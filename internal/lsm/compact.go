package lsm

import (
	"fmt"
	"sort"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
	"timeunion/internal/sstable"
	"timeunion/internal/tuple"
)

// mergedEntry is one key's set of values gathered from input tables.
type mergedEntry struct {
	key encoding.Key
	val []byte
	seq uint64 // creation seq of the source table, for newest-wins ordering
}

// collectEntries reads every entry of the given tables into memory, sorted
// by (key, source table seq). Partitions are bounded (a few MB at the
// paper's partition sizes), so an in-memory sort-merge is the simple and
// correct choice.
func collectEntries(handles []*tableHandle) ([]mergedEntry, error) {
	var entries []mergedEntry
	for _, h := range handles {
		it := h.tbl.Iter(nil, nil)
		for it.Next() {
			key, err := encoding.ParseKey(it.Key())
			if err != nil {
				it.Release()
				return nil, fmt.Errorf("lsm: compact: %w", err)
			}
			entries = append(entries, mergedEntry{
				key: key,
				val: append([]byte(nil), it.Value()...),
				seq: h.seq,
			})
		}
		err := it.Err()
		it.Release()
		if err != nil {
			return nil, fmt.Errorf("lsm: compact read %s: %w", h.storeKey, err)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		for b := 0; b < encoding.KeyLen; b++ {
			if entries[i].key[b] != entries[j].key[b] {
				return entries[i].key[b] < entries[j].key[b]
			}
		}
		return entries[i].seq < entries[j].seq
	})
	return entries, nil
}

// foldEntries merges duplicate keys and then merges any time-overlapping
// chunks of the same series, in embedded-sequence order so per-sample
// newest-wins semantics hold (paper §3.3: "keep the data sample from the
// newest SSTable"). Merging every overlapping group inside a compaction is
// what keeps chunk-level sequence ranks consistent afterwards: the merged
// chunk's sequence dominates exactly the chunks it absorbed.
func foldEntries(entries []mergedEntry) ([]tuple.KV, error) {
	// Duplicate keys are NOT pre-merged pairwise: a same-key merge would
	// stamp old samples with the newer chunk's sequence before the overlap
	// sweep orders the whole group, losing per-sample recency against a
	// chunk with an intermediate sequence. The sweep handles equal keys
	// (equal start time implies overlap) in one pass.
	kvs := make([]tuple.KV, len(entries))
	for i, e := range entries {
		kvs[i] = tuple.KV{Key: e.key, Value: e.val}
	}
	return mergeOverlappingSameID(kvs)
}

// mergeOverlappingSameID sweeps key-sorted kvs and merges runs of chunks of
// one series whose sample time ranges overlap, oldest sequence first. The
// output stays sorted; merged chunks are re-keyed at their first sample.
func mergeOverlappingSameID(kvs []tuple.KV) ([]tuple.KV, error) {
	out := kvs[:0]
	for i := 0; i < len(kvs); {
		id := kvs[i].Key.ID()
		_, hi, err := tuple.TimeRange(kvs[i].Value)
		if err != nil {
			return nil, fmt.Errorf("lsm: compact overlap scan: %w", err)
		}
		j := i + 1
		for j < len(kvs) && kvs[j].Key.ID() == id && kvs[j].Key.StartT() <= hi {
			_, jhi, err := tuple.TimeRange(kvs[j].Value)
			if err != nil {
				return nil, err
			}
			if jhi > hi {
				hi = jhi
			}
			j++
		}
		if j == i+1 {
			out = append(out, kvs[i])
			i = j
			continue
		}
		group := append([]tuple.KV(nil), kvs[i:j]...)
		sort.Slice(group, func(a, b int) bool {
			return tuple.SeqOf(group[a].Value) < tuple.SeqOf(group[b].Value)
		})
		acc := group[0].Value
		for _, kv := range group[1:] {
			if acc, err = mergeBySeq(acc, kv.Value); err != nil {
				return nil, err
			}
		}
		lo, _, err := tuple.TimeRange(acc)
		if err != nil {
			return nil, err
		}
		out = append(out, tuple.KV{Key: encoding.MakeKey(id, lo), Value: acc})
		i = j
	}
	return out, nil
}

// allTables returns every table in the partition including patches, in
// creation order within the base/patch structure.
func allTables(p *partition) []*tableHandle {
	out := append([]*tableHandle(nil), p.tables...)
	for _, ps := range p.patches {
		out = append(out, ps...)
	}
	return out
}

// runL0L1 executes an L0→L1 job: merge the job's input partitions,
// gathering each series' chunks contiguously, and write the result to
// level 1 aligned to the shortest input partition length (paper §3.3 and
// Figure 12 left). The fast-manifest swap after the in-memory publish is
// the commit point; input objects are deleted only after it.
func (l *LSM) runL0L1(job *compactionJob) error {
	entries, err := collectEntries(job.handles)
	if err != nil {
		return err
	}
	kvs, err := foldEntries(entries)
	if err != nil {
		return err
	}
	newParts, err := l.buildPartitions(l.opts.Fast, 1, kvs, job.outLen)
	if err != nil {
		return err
	}
	job.res.partsOut = len(newParts)
	for _, p := range newParts {
		job.res.tablesOut += len(p.tables)
		for _, h := range p.tables {
			job.res.bytesOut += h.tbl.Size()
		}
	}

	l.mu.Lock()
	dead := map[*partition]bool{}
	for _, p := range job.inputs {
		dead[p] = true
	}
	l.l0 = removePartitions(l.l0, dead)
	l.l1 = removePartitions(l.l1, dead)
	for _, np := range newParts {
		l.l1 = insertPartition(l.l1, np)
	}
	l.mu.Unlock()

	if err := l.commitManifests(true, false, nil); err != nil {
		return err
	}
	for _, h := range job.handles {
		h.markObsolete()
	}
	l.stats.c01.Add(1)
	return nil
}

// buildPartitions splits kvs on the outLen grid and writes one partition
// per non-empty window at the given level/store. On error every table
// already written — in earlier windows and, via writeTables' own cleanup,
// in the failing one — is deleted, so a failed build leaves no orphans.
func (l *LSM) buildPartitions(store cloud.Store, level int, kvs []tuple.KV, outLen int64) (parts []*partition, err error) {
	defer func() {
		if err != nil {
			for _, p := range parts {
				for _, h := range p.tables {
					h.markObsolete()
				}
			}
			parts = nil
		}
	}()
	byWindow, order, err := bucketByWindow(kvs, outLen)
	if err != nil {
		return nil, err
	}
	for _, ws := range order {
		p := &partition{minT: ws, maxT: ws + outLen}
		handles, err := l.writeTables(store, level, p, byWindow[ws])
		if err != nil {
			return parts, err
		}
		p.tables = handles
		p.patches = make([][]*tableHandle, len(handles))
		parts = append(parts, p)
	}
	return parts, nil
}

// bucketByWindow splits each kv on the window grid and groups the pieces.
// Every returned bucket is normalized: sorted by key with duplicates
// merged. (Buckets are not sorted merely by construction: a chunk that
// overlaps into a window from an earlier one is keyed by its first sample
// *inside* the window, which can come after a later chunk's start.)
func bucketByWindow(kvs []tuple.KV, outLen int64) (map[int64][]tuple.KV, []int64, error) {
	byWindow := map[int64][]tuple.KV{}
	var order []int64
	for _, kv := range kvs {
		pieces, err := tuple.Split(kv.Key, kv.Value, outLen)
		if err != nil {
			return nil, nil, fmt.Errorf("lsm: compact split: %w", err)
		}
		for _, piece := range pieces {
			ws := tuple.WindowStart(piece.Key.StartT(), outLen)
			if _, ok := byWindow[ws]; !ok {
				order = append(order, ws)
			}
			byWindow[ws] = append(byWindow[ws], piece)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for ws, bucket := range byWindow {
		normalized, err := normalizeKVs(bucket)
		if err != nil {
			return nil, nil, err
		}
		byWindow[ws] = normalized
	}
	return byWindow, order, nil
}

// normalizeKVs sorts kvs by key and merges duplicates (larger embedded
// sequence treated as newer).
func normalizeKVs(kvs []tuple.KV) ([]tuple.KV, error) {
	sortKVs(kvs)
	out := kvs[:0]
	for _, kv := range kvs {
		if n := len(out); n > 0 && out[n-1].Key == kv.Key {
			merged, err := mergeBySeq(out[n-1].Value, kv.Value)
			if err != nil {
				return nil, err
			}
			out[n-1].Value = merged
			continue
		}
		out = append(out, kv)
	}
	return out, nil
}

func releaseAll(hs []*tableHandle) {
	for _, h := range hs {
		h.release()
	}
}

// runL1L2 executes an L1→L2 job: ship one level-2-sized window of L1
// partitions to the slow store (paper §3.3 "Compaction on slow cloud
// storage"). Fully ordered data creates a fresh L2 partition with one
// write and zero slow-tier reads; out-of-order (stale) windows that
// overlap existing L2 partitions become patches routed by the ID ranges
// of the existing SSTables. The slow-manifest swap — carrying tombstones
// for the consumed fast-tier inputs — is the cross-tier commit point.
func (l *LSM) runL1L2(job *compactionJob) error {
	inputs, overlapped, outLen := job.inputs, job.overlapped, job.outLen

	entries, err := collectEntries(job.handles)
	if err != nil {
		return err
	}
	kvs, err := foldEntries(entries)
	if err != nil {
		return err
	}

	// Any output table written before a failure below is deleted on the
	// error path, so an aborted upload strands nothing.
	var created []*tableHandle
	fail := func(err error) error {
		for _, h := range created {
			h.markObsolete()
		}
		return err
	}

	// Split on the finest involved grid and route each window: covered →
	// patch batch of the covering L2 partition; uncovered → new partition
	// aligned to outLen (Figure 12 right).
	byWindow, order, err := bucketByWindow(kvs, outLen)
	if err != nil {
		return err
	}
	patchBatches := map[*partition][]tuple.KV{}
	newWindowKVs := map[int64][]tuple.KV{}
	var newOrder []int64
	for _, ws := range order {
		var cover *partition
		for _, p := range overlapped {
			if p.overlaps(ws, ws+outLen) {
				cover = p
				break
			}
		}
		if cover != nil {
			patchBatches[cover] = append(patchBatches[cover], byWindow[ws]...)
		} else {
			newWindowKVs[ws] = byWindow[ws]
			newOrder = append(newOrder, ws)
		}
	}

	// New L2 partitions for uncovered windows.
	var newParts []*partition
	for _, ws := range newOrder {
		p := &partition{minT: ws, maxT: ws + outLen}
		hs, err := l.writeTables(l.opts.Slow, 2, p, newWindowKVs[ws])
		if err != nil {
			return fail(err)
		}
		p.tables = hs
		p.patches = make([][]*tableHandle, len(hs))
		newParts = append(newParts, p)
		created = append(created, hs...)
	}

	// Patches: route by the ID ranges of the target partition's SSTables.
	type patchSet struct {
		part    *partition
		byTable map[int][]tuple.KV
	}
	var patchSets []patchSet
	for _, target := range overlapped {
		batch := patchBatches[target]
		if len(batch) == 0 {
			continue
		}
		sortKVs(batch)
		ps := patchSet{part: target, byTable: map[int][]tuple.KV{}}
		l.mu.RLock()
		for _, kv := range batch {
			idx := routeByIDRange(target.tables, kv.Key.ID())
			ps.byTable[idx] = append(ps.byTable[idx], kv)
		}
		l.mu.RUnlock()
		patchSets = append(patchSets, ps)
	}
	type writtenPatch struct {
		part *partition
		idx  int
		h    *tableHandle
	}
	var written []writtenPatch
	for _, ps := range patchSets {
		idxs := make([]int, 0, len(ps.byTable))
		for idx := range ps.byTable {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			l.mu.RLock()
			baseSeq := ps.part.tables[idx].seq
			l.mu.RUnlock()
			h, err := l.writePatch(ps.part, baseSeq, ps.byTable[idx])
			if err != nil {
				return fail(err)
			}
			written = append(written, writtenPatch{part: ps.part, idx: idx, h: h})
			created = append(created, h)
		}
	}

	job.res.partsOut = len(newParts)
	job.res.patchesOut = len(written)
	job.res.tablesOut = len(created)
	for _, h := range created {
		job.res.bytesOut += h.tbl.Size()
	}

	// Publish: swap inputs out of L1, add new L2 partitions and patches.
	l.mu.Lock()
	dead := map[*partition]bool{}
	for _, p := range inputs {
		dead[p] = true
	}
	l.l1 = removePartitions(l.l1, dead)
	for _, np := range newParts {
		l.l2 = insertPartition(l.l2, np)
	}
	for _, wp := range written {
		wp.part.patches[wp.idx] = append(wp.part.patches[wp.idx], wp.h)
		l.stats.patches.Add(1)
	}
	// Collect patch-merge candidates.
	type mergeJob struct {
		part *partition
		idx  int
	}
	var jobs []mergeJob
	for _, wp := range written {
		if len(wp.part.patches[wp.idx]) > l.opts.PatchThreshold {
			jobs = append(jobs, mergeJob{wp.part, wp.idx})
		}
	}
	l.mu.Unlock()

	// Cross-tier commit: the slow manifest (new L2 tables + patches, plus
	// tombstones naming the consumed fast inputs) is the atomic point; the
	// fast manifest follows. A crash between the two is healed at recovery
	// by subtracting the tombstones from the fast table set.
	tombs := make([]string, 0, len(job.handles))
	for _, h := range job.handles {
		tombs = append(tombs, h.storeKey)
	}
	if err := l.commitManifests(true, true, tombs); err != nil {
		return err
	}
	for _, h := range job.handles {
		h.markObsolete()
	}
	l.stats.c12.Add(1)

	// Split-merge overloaded tables (Figure 11). Deduplicate jobs and run
	// highest index first so earlier indexes stay valid.
	seen := map[*partition]map[int]bool{}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].idx > jobs[j].idx })
	for _, j := range jobs {
		if seen[j.part] == nil {
			seen[j.part] = map[int]bool{}
		}
		if seen[j.part][j.idx] {
			continue
		}
		seen[j.part][j.idx] = true
		if err := l.mergePatches(j.part, j.idx); err != nil {
			return err
		}
	}
	return nil
}

// writePatch writes one patch SSTable appended to base table baseSeq of
// partition p on the slow store.
func (l *LSM) writePatch(p *partition, baseSeq uint64, kvs []tuple.KV) (*tableHandle, error) {
	w := sstable.NewWriter(l.opts.BlockSize)
	for _, kv := range kvs {
		if err := w.Add(kv.Key[:], kv.Value); err != nil {
			return nil, fmt.Errorf("lsm: build patch: %w", err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		return nil, err
	}
	seq := l.nextFileSeq()
	name := patchName(p, baseSeq, seq)
	if err := l.opts.Slow.Put(name, data); err != nil {
		return nil, fmt.Errorf("lsm: write patch %s: %w", name, err)
	}
	tbl, err := sstable.OpenTableFromBytes(l.opts.Slow, name, l.cacheFor(l.opts.Slow), data)
	if err != nil {
		return nil, err
	}
	return newTableHandle(tbl, l.opts.Slow, name, seq), nil
}

// mergePatches merges base table idx of partition p with all its patches
// and replaces it with new SSTables having disjoint ID ranges (Figure 11).
func (l *LSM) mergePatches(p *partition, idx int) (err error) {
	start := time.Now()
	var tablesIn, tablesOut int
	var bytesIn, bytesOut int64
	defer func() {
		if j := l.opts.Journal; j != nil && tablesIn > 0 {
			j.Emit("lsm.patch_merge", start, err, map[string]any{
				"tables_in":  tablesIn,
				"bytes_in":   bytesIn,
				"tables_out": tablesOut,
				"bytes_out":  bytesOut,
				"min_t":      p.minT,
				"max_t":      p.maxT,
			})
		}
	}()
	l.mu.Lock()
	if idx >= len(p.tables) {
		l.mu.Unlock()
		return nil
	}
	old := append([]*tableHandle{p.tables[idx]}, p.patches[idx]...)
	for _, h := range old {
		h.retain()
	}
	tablesIn = len(old)
	for _, h := range old {
		bytesIn += h.tbl.Size()
	}
	l.mu.Unlock()

	entries, err := collectEntries(old)
	if err != nil {
		releaseAll(old)
		return err
	}
	kvs, err := foldEntries(entries)
	releaseAll(old)
	if err != nil {
		return err
	}
	newHandles, err := l.writeTables(l.opts.Slow, 2, p, kvs)
	if err != nil {
		return err
	}
	tablesOut = len(newHandles)
	for _, h := range newHandles {
		bytesOut += h.tbl.Size()
	}

	l.mu.Lock()
	tables := make([]*tableHandle, 0, len(p.tables)-1+len(newHandles))
	patches := make([][]*tableHandle, 0, cap(tables))
	tables = append(tables, p.tables[:idx]...)
	patches = append(patches, p.patches[:idx]...)
	tables = append(tables, newHandles...)
	patches = append(patches, make([][]*tableHandle, len(newHandles))...)
	tables = append(tables, p.tables[idx+1:]...)
	patches = append(patches, p.patches[idx+1:]...)
	p.tables = tables
	p.patches = patches
	l.mu.Unlock()

	// Publish the split-merge durably before deleting what it replaced.
	if err := l.commitManifests(false, true, nil); err != nil {
		return err
	}
	for _, h := range old {
		h.markObsolete()
	}
	l.stats.patchMerges.Add(1)
	return nil
}

// routeByIDRange picks the base table whose ID range should receive a patch
// entry for id: the last table whose first ID is <= id, else the first.
func routeByIDRange(tables []*tableHandle, id uint64) int {
	idx := 0
	for i, h := range tables {
		lo, _ := h.idRange()
		if lo <= id {
			idx = i
		}
	}
	return idx
}

func sortKVs(kvs []tuple.KV) {
	sort.Slice(kvs, func(i, j int) bool {
		for b := 0; b < encoding.KeyLen; b++ {
			if kvs[i].Key[b] != kvs[j].Key[b] {
				return kvs[i].Key[b] < kvs[j].Key[b]
			}
		}
		return false
	})
}
