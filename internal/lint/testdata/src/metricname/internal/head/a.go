// Package head is the metricname fixture: constant names, matching
// subsystem, no duplicate series.
package head

import "fix/internal/obs"

const flushName = "timeunion_head_flushes_total"

func register(reg *obs.Registry, dyn string) {
	reg.Counter(flushName, "", "constant expressions are fine")
	reg.Counter("timeunion_wal_records_total", "", "wrong subsystem") // want `subsystem "wal" but this package registers "head"`
	reg.Gauge("head_series", "", "bad prefix")                        // want "does not match timeunion_"
	reg.Counter("Timeunion_head_X", "", "bad case")                   // want "does not match timeunion_"
	reg.Counter(dyn, "", "dynamic name")                              // want "compile-time string constant"
	reg.Counter("timeunion_head_flushes_total", "", "duplicate")      // want "already registered in this package"
	reg.Counter("timeunion_head_flushes_total", `kind="group"`, "same name, new labels: ok")
	reg.CounterFunc("timeunion_head_series", "", "ok", func() float64 { return 0 })
	reg.Histogram("timeunion_head_flush_seconds", dyn, "dynamic labels skip the duplicate check")
	reg.Histogram("timeunion_head_flush_seconds", dyn, "second dynamic-label site: ok")
}
