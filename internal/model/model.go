// Package model implements the paper's analytical cost models: the grouping
// index-space and query-latency analysis of §3.1 (Equations 1-6, notation in
// Table 1) and the compaction cost analysis of §3.3 (Equations 7-10). The
// tests validate each model against the worked examples in the paper, and
// the benchmark harness uses them to sanity-check measured shapes.
package model

import "math"

// GroupingParams is the Table 1 notation for the grouping analysis.
type GroupingParams struct {
	N  float64 // number of timeseries
	T  float64 // average tags per timeseries
	Sp float64 // bytes per posting-list entry
	St float64 // bytes per tag
	Sg float64 // average timeseries per group
	Tg float64 // average group tags per group
	Tu float64 // average unique tags per group (after dedup)
}

// IndexCostIndividual is Equation 1: every tag of every timeseries costs
// one posting entry and one stored tag.
//
//	Cost_s1 = N * T * (Sp + St)
func IndexCostIndividual(p GroupingParams) float64 {
	return p.N * p.T * (p.Sp + p.St)
}

// IndexCostGrouped is Equation 2: the first-level index holds Tu posting
// entries per group; the second-level index holds (T - Tg) entries per
// member; group tags are stored once per group, unique tags per member.
//
//	Cost_s2 = (N/Sg)*Tu*Sp + (T-Tg)*N*Sp + (N/Sg)*Tg*St + (T-Tg)*N*St
func IndexCostGrouped(p GroupingParams) float64 {
	groups := p.N / p.Sg
	return groups*p.Tu*p.Sp + (p.T-p.Tg)*p.N*p.Sp +
		groups*p.Tg*p.St + (p.T-p.Tg)*p.N*p.St
}

// GroupingSavesIndexSpace reports the §3.1 guideline: grouping benefits if
// Sg > ((Tu/Tg)*Sp + St) / (Sp + St).
func GroupingSavesIndexSpace(p GroupingParams) bool {
	return p.Sg > ((p.Tu/p.Tg)*p.Sp+p.St)/(p.Sp+p.St)
}

// QueryParams is the Table 1 notation for the query cost analysis.
type QueryParams struct {
	P       float64 // time partitions covered by the query
	Sdata   float64 // raw bytes per timeseries per partition
	Sblock  float64 // SSTable data block size (4096 by default)
	L       float64 // located timeseries
	G       float64 // located groups
	Sg      float64 // timeseries per group
	R1      float64 // compression ratio, individual model
	R2      float64 // compression ratio, grouping model
	CostEBS float64 // seconds per byte on the block store (1/bandwidth)
	CostS3  float64 // seconds per Get request on the object store
}

// QueryCostIndividualEBS is Equation 3: recent data on the block store is
// bandwidth-bound.
//
//	Cost_q1 = L * P * (Sdata/R1) * Cost_EBS
func QueryCostIndividualEBS(p QueryParams) float64 {
	return p.L * p.P * (p.Sdata / p.R1) * p.CostEBS
}

// QueryCostIndividualS3 is Equation 4: long-range data on the object store
// is request-bound — one Get per touched data block.
//
//	Cost_q1 = L * P * ceil(Sdata/(Sblock*R1)) * Cost_S3
func QueryCostIndividualS3(p QueryParams) float64 {
	return p.L * p.P * math.Ceil(p.Sdata/(p.Sblock*p.R1)) * p.CostS3
}

// QueryCostGroupedEBS is Equation 5: a group read fetches all members'
// columns of the tuple.
//
//	Cost_q2 = G * P * (Sdata*Sg/R2) * Cost_EBS
func QueryCostGroupedEBS(p QueryParams) float64 {
	return p.G * p.P * (p.Sdata * p.Sg / p.R2) * p.CostEBS
}

// QueryCostGroupedS3 is Equation 6.
//
//	Cost_q2 = G * P * ceil(Sdata*Sg/(Sblock*R2)) * Cost_S3
func QueryCostGroupedS3(p QueryParams) float64 {
	return p.G * p.P * math.Ceil(p.Sdata*p.Sg/(p.Sblock*p.R2)) * p.CostS3
}

// CompactionParams is the §3.3 compaction cost notation.
type CompactionParams struct {
	Sd    float64 // total data size
	Sb    float64 // topmost level size
	M     float64 // level size multiplier
	Sfast float64 // fast storage size
}

// Levels is Equation 7: the number of levels a traditional LSM needs for
// data size sd given top level size Sb and multiplier M.
//
//	L = log(Sd*(M-1)/Sb + 1) / log(M)
func Levels(sd, sb, m float64) float64 {
	return math.Log(sd*(m-1)/sb+1) / math.Log(m)
}

// TraditionalSlowWriteCost is Equation 8: in a traditional multi-level LSM,
// data entering slow-storage level l (counted from the first slow level)
// has been rewritten l times on slow storage.
//
//	Cost_1 = Sb * sum_{l=1..L-Lfast} M^(Lfast+l-1) * l
func TraditionalSlowWriteCost(p CompactionParams) float64 {
	L := math.Floor(Levels(p.Sd, p.Sb, p.M))
	Lfast := math.Floor(Levels(p.Sfast, p.Sb, p.M))
	var cost float64
	for l := 1.0; l <= L-Lfast; l++ {
		cost += p.Sb * math.Pow(p.M, Lfast+l-1) * l
	}
	return cost
}

// OneLevelSlowWriteCost is Equation 9: TimeUnion's single slow level writes
// each byte exactly once.
//
//	Cost_2 = Sd - Sfast = Sb * sum_{l=1..L-Lfast} M^(Lfast+l-1)
func OneLevelSlowWriteCost(p CompactionParams) float64 {
	L := math.Floor(Levels(p.Sd, p.Sb, p.M))
	Lfast := math.Floor(Levels(p.Sfast, p.Sb, p.M))
	var cost float64
	for l := 1.0; l <= L-Lfast; l++ {
		cost += p.Sb * math.Pow(p.M, Lfast+l-1)
	}
	return cost
}

// CompactionSaving is Equation 10: the slow-store write traffic avoided by
// keeping one level on slow storage.
//
//	Cost_saving = Sb * sum_{l=1..L-Lfast} M^(Lfast+l-1) * (l-1)
func CompactionSaving(p CompactionParams) float64 {
	return TraditionalSlowWriteCost(p) - OneLevelSlowWriteCost(p)
}
