// Package lsm shows allochot is scoped: the same allocating iterator
// outside internal/chunkenc produces no findings.
package lsm

type Walker struct {
	buf []int64
	i   int
}

func (w *Walker) Next() bool {
	w.buf = append(w.buf, 1)
	w.i++
	return w.i < len(w.buf)
}
