package encoding

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBufRoundTrip(t *testing.T) {
	var b Buf
	b.PutByte(0xAB)
	b.PutBE16(0x1234)
	b.PutBE32(0xDEADBEEF)
	b.PutBE64(0x0102030405060708)
	b.PutUvarint(300)
	b.PutVarint(-12345)
	b.PutUvarintBytes([]byte("hello"))
	b.PutUvarintString("world")

	d := NewDecbuf(b.Get())
	if got := d.Byte(); got != 0xAB {
		t.Fatalf("Byte = %x, want ab", got)
	}
	if got := d.BE16(); got != 0x1234 {
		t.Fatalf("BE16 = %x", got)
	}
	if got := d.BE32(); got != 0xDEADBEEF {
		t.Fatalf("BE32 = %x", got)
	}
	if got := d.BE64(); got != 0x0102030405060708 {
		t.Fatalf("BE64 = %x", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -12345 {
		t.Fatalf("Varint = %d", got)
	}
	if got := d.UvarintBytes(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("UvarintBytes = %q", got)
	}
	if got := d.UvarintString(); got != "world" {
		t.Fatalf("UvarintString = %q", got)
	}
	if d.Err() != nil {
		t.Fatalf("unexpected err: %v", d.Err())
	}
	if d.Len() != 0 {
		t.Fatalf("leftover bytes: %d", d.Len())
	}
}

func TestDecbufShort(t *testing.T) {
	d := NewDecbuf([]byte{0x01})
	_ = d.BE64()
	if d.Err() != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", d.Err())
	}
	// Sticky error: further reads return zero values without panicking.
	if got := d.Byte(); got != 0 {
		t.Fatalf("Byte after error = %d", got)
	}
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("Uvarint after error = %d", got)
	}
}

func TestDecbufUvarintTruncated(t *testing.T) {
	// A varint whose continuation bit is set but no further bytes follow.
	d := NewDecbuf([]byte{0x80})
	_ = d.Uvarint()
	if d.Err() != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", d.Err())
	}
}

func TestVarintQuick(t *testing.T) {
	f := func(u uint64, v int64) bool {
		var b Buf
		b.PutUvarint(u)
		b.PutVarint(v)
		d := NewDecbuf(b.Get())
		return d.Uvarint() == u && d.Varint() == v && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		id uint64
		ts int64
	}{
		{0, 0},
		{1, -1},
		{42, 1_600_000_000_000},
		{math.MaxUint64, math.MaxInt64},
		{7, math.MinInt64},
	}
	for _, c := range cases {
		k := MakeKey(c.id, c.ts)
		if k.ID() != c.id || k.StartT() != c.ts {
			t.Fatalf("key(%d,%d) round-trip = (%d,%d)", c.id, c.ts, k.ID(), k.StartT())
		}
		k2, err := ParseKey(k[:])
		if err != nil || k2 != k {
			t.Fatalf("ParseKey: %v %v", k2, err)
		}
	}
}

func TestParseKeyBadLength(t *testing.T) {
	if _, err := ParseKey(make([]byte, 8)); err == nil {
		t.Fatal("ParseKey accepted an 8-byte key")
	}
}

// Keys must sort byte-lexicographically in (ID, timestamp) order, including
// across negative timestamps — that ordering property is what the
// time-partitioned LSM relies on.
func TestKeyOrdering(t *testing.T) {
	f := func(id1, id2 uint64, t1, t2 int64) bool {
		k1, k2 := MakeKey(id1, t1), MakeKey(id2, t2)
		byteLess := bytes.Compare(k1[:], k2[:]) < 0
		logicalLess := id1 < id2 || (id1 == id2 && t1 < t2)
		return byteLess == logicalLess
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBitStreamBits(t *testing.T) {
	w := NewBitWriter(nil)
	pattern := []bool{true, false, true, true, false, false, true, false, true, true, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got, want := w.BitLen(), len(pattern); got != want {
		t.Fatalf("BitLen = %d, want %d", got, want)
	}
	r := NewBitReader(w.Bytes())
	for i, want := range pattern {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %v, want %v", i, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBitStreamBytesUnaligned(t *testing.T) {
	w := NewBitWriter(nil)
	w.WriteBit(true)
	w.WriteBit(false)
	w.WriteBit(true)
	w.WriteU8(0xC3)
	w.WriteBits(0x1F, 5)
	r := NewBitReader(w.Bytes())
	if !r.ReadBit() || r.ReadBit() || !r.ReadBit() {
		t.Fatal("prefix bits wrong")
	}
	if got := r.ReadU8(); got != 0xC3 {
		t.Fatalf("byte = %x, want c3", got)
	}
	if got := r.ReadBits(5); got != 0x1F {
		t.Fatalf("bits = %x, want 1f", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBitStreamQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		rnd := rand.New(rand.NewSource(int64(len(vals))))
		widths := make([]int, len(vals))
		w := NewBitWriter(nil)
		for i, v := range vals {
			widths[i] = 1 + rnd.Intn(64)
			mask := uint64(math.MaxUint64)
			if widths[i] < 64 {
				mask = (1 << widths[i]) - 1
			}
			vals[i] = v & mask
			w.WriteBits(vals[i], widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i, v := range vals {
			if r.ReadBits(widths[i]) != v {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitReaderPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	_ = r.ReadBits(16)
	if r.Err() == nil {
		t.Fatal("expected error reading past end")
	}
}

func TestWriteBitsZeroWidthSafe(t *testing.T) {
	w := NewBitWriter(nil)
	w.WriteBits(0, 0)
	if w.BitLen() != 0 {
		t.Fatalf("BitLen = %d after zero-width write", w.BitLen())
	}
}
