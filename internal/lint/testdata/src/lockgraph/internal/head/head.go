// Package head mirrors the stripe → series lock levels of the real head.
package head

import "sync"

type MemSeries struct {
	mu  sync.Mutex
	seq uint64
}

type stripe struct {
	mu     sync.Mutex
	series map[uint64]*MemSeries
}

type Head struct {
	stripes []stripe
}

// Touch acquires stripe then series: the declared order.
func (h *Head) Touch() {
	st := &h.stripes[0]
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range st.series {
		s.mu.Lock()
		s.seq++
		s.mu.Unlock()
	}
}

// Backwards acquires the stripe lock while holding a series lock.
func (h *Head) Backwards(s *MemSeries) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h.stripes[0].mu.Lock() // want `lock order violation in Head.Backwards: head.stripe.mu \(level 40\) acquired while head.MemSeries.mu \(level 50\) is held`
	h.stripes[0].mu.Unlock()
}
