// Package remote implements the end-to-end HTTP layer of the Figure 13
// evaluation: a batch insert/query API over TimeUnion (the paper uses the
// Prometheus remote-write API with 10,000-sample batches), and a Cortex
// simulator — the same HTTP surface over the tsdb engine with an injected
// internal RPC hop per batch, modelling the distributor→ingester gRPC
// communication the paper identifies as Cortex's insert-path overhead.
//
// Substitution note: real remote write is snappy-compressed protobuf; this
// reproduction uses JSON (stdlib only). Both systems pay the same wire
// format, so relative shapes are preserved.
package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"timeunion/internal/core"
	"timeunion/internal/labels"
	"timeunion/internal/tsdb"
)

// Sample is one wire-format data point.
type Sample struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// WriteSeries is one timeseries' batch in a slow-path write.
type WriteSeries struct {
	Labels  map[string]string `json:"labels"`
	Samples []Sample          `json:"samples"`
}

// WriteRequest is the slow-path insert body (Prometheus remote write
// shape: full tag sets with every batch).
type WriteRequest struct {
	Timeseries []WriteSeries `json:"timeseries"`
}

// WriteResponse returns the series IDs assigned to each batch entry, in
// order, enabling fast-path writes afterwards.
type WriteResponse struct {
	IDs []uint64 `json:"ids,omitempty"`
}

// FastWriteEntry is one series' batch in a fast-path write.
type FastWriteEntry struct {
	ID      uint64   `json:"id"`
	Samples []Sample `json:"samples"`
}

// FastWriteRequest is the fast-path insert body (§3.4 second API).
type FastWriteRequest struct {
	Entries []FastWriteEntry `json:"entries"`
}

// GroupWriteRequest inserts shared-timestamp rounds into one group.
type GroupWriteRequest struct {
	GroupTags  map[string]string   `json:"group_tags,omitempty"`
	UniqueTags []map[string]string `json:"unique_tags,omitempty"`
	// Fast path: group ID + slots instead of tags.
	GID   uint64  `json:"gid,omitempty"`
	Slots []int   `json:"slots,omitempty"`
	Times []int64 `json:"times"`
	// Values[i] are the member values at Times[i].
	Values [][]float64 `json:"values"`
}

// GroupWriteResponse returns the group ID and slots for fast-path use.
type GroupWriteResponse struct {
	GID   uint64 `json:"gid"`
	Slots []int  `json:"slots"`
}

// MatcherSpec is a wire-format tag selector.
type MatcherSpec struct {
	Type  string `json:"type"` // "=", "!=", "=~", "!~"
	Name  string `json:"name"`
	Value string `json:"value"`
}

// QueryRequest is the query body.
type QueryRequest struct {
	MinT     int64         `json:"min_t"`
	MaxT     int64         `json:"max_t"`
	Matchers []MatcherSpec `json:"matchers"`
}

// QuerySeries is one result series.
type QuerySeries struct {
	Labels  map[string]string `json:"labels"`
	Samples []Sample          `json:"samples"`
}

// QueryResponse is the query result body.
type QueryResponse struct {
	Series []QuerySeries `json:"series"`
}

func (m MatcherSpec) compile() (*labels.Matcher, error) {
	var t labels.MatchType
	switch m.Type {
	case "=", "":
		t = labels.MatchEqual
	case "!=":
		t = labels.MatchNotEqual
	case "=~":
		t = labels.MatchRegexp
	case "!~":
		t = labels.MatchNotRegexp
	default:
		return nil, fmt.Errorf("remote: unknown matcher type %q", m.Type)
	}
	return labels.NewMatcher(t, m.Name, m.Value)
}

// Backend is the engine behind a server.
type Backend interface {
	Append(ls labels.Labels, t int64, v float64) (uint64, error)
	AppendFast(id uint64, t int64, v float64) error
	AppendGroup(groupTags labels.Labels, uniqueTags []labels.Labels, t int64, vals []float64) (uint64, []int, error)
	AppendGroupFast(gid uint64, slots []int, t int64, vals []float64) error
	Query(mint, maxt int64, matchers ...*labels.Matcher) ([]QuerySeries, error)
}

// ContextBackend is optionally implemented by backends whose queries accept
// a context — the server then forwards the request context, which carries
// cancellation and any obs.Trace a middleware attached.
type ContextBackend interface {
	QueryContext(ctx context.Context, mint, maxt int64, matchers ...*labels.Matcher) ([]QuerySeries, error)
}

// SeriesCursor yields a query result one series at a time. Next returns
// the next series, false on exhaustion, or an error that terminates the
// stream.
type SeriesCursor interface {
	Next() (QuerySeries, bool, error)
}

// StreamingBackend is optionally implemented by backends that can evaluate
// a query lazily (TimeUnion's QuerySeriesSet). Backends without it are
// served by materializing Query and replaying the slice.
type StreamingBackend interface {
	QueryStream(ctx context.Context, mint, maxt int64, matchers ...*labels.Matcher) (SeriesCursor, error)
}

// NewServer builds an http.Handler exposing the batch API over a backend.
func NewServer(b Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/write", func(w http.ResponseWriter, r *http.Request) {
		var req WriteRequest
		if !decode(w, r, &req) {
			return
		}
		resp := WriteResponse{IDs: make([]uint64, 0, len(req.Timeseries))}
		for _, ts := range req.Timeseries {
			ls := labels.FromMap(ts.Labels)
			var id uint64
			for _, s := range ts.Samples {
				var err error
				id, err = b.Append(ls, s.T, s.V)
				if err != nil {
					httpError(w, err)
					return
				}
			}
			resp.IDs = append(resp.IDs, id)
		}
		reply(w, resp)
	})
	mux.HandleFunc("/api/v1/write_fast", func(w http.ResponseWriter, r *http.Request) {
		var req FastWriteRequest
		if !decode(w, r, &req) {
			return
		}
		for _, e := range req.Entries {
			for _, s := range e.Samples {
				if err := b.AppendFast(e.ID, s.T, s.V); err != nil {
					httpError(w, err)
					return
				}
			}
		}
		reply(w, struct{}{})
	})
	mux.HandleFunc("/api/v1/write_group", func(w http.ResponseWriter, r *http.Request) {
		var req GroupWriteRequest
		if !decode(w, r, &req) {
			return
		}
		if len(req.Times) != len(req.Values) {
			httpError(w, fmt.Errorf("remote: times/values mismatch"))
			return
		}
		var resp GroupWriteResponse
		if req.GID != 0 {
			resp.GID, resp.Slots = req.GID, req.Slots
			for i, t := range req.Times {
				if err := b.AppendGroupFast(req.GID, req.Slots, t, req.Values[i]); err != nil {
					httpError(w, err)
					return
				}
			}
		} else {
			gTags := labels.FromMap(req.GroupTags)
			uniques := make([]labels.Labels, len(req.UniqueTags))
			for i, m := range req.UniqueTags {
				uniques[i] = labels.FromMap(m)
			}
			for i, t := range req.Times {
				gid, slots, err := b.AppendGroup(gTags, uniques, t, req.Values[i])
				if err != nil {
					httpError(w, err)
					return
				}
				resp.GID, resp.Slots = gid, slots
			}
		}
		reply(w, resp)
	})
	mux.HandleFunc("/api/v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		ms := make([]*labels.Matcher, 0, len(req.Matchers))
		for _, spec := range req.Matchers {
			m, err := spec.compile()
			if err != nil {
				httpError(w, err)
				return
			}
			ms = append(ms, m)
		}
		var series []QuerySeries
		var err error
		if cb, ok := b.(ContextBackend); ok {
			series, err = cb.QueryContext(r.Context(), req.MinT, req.MaxT, ms...)
		} else {
			series, err = b.Query(req.MinT, req.MaxT, ms...)
		}
		if err != nil {
			httpError(w, err)
			return
		}
		reply(w, QueryResponse{Series: series})
	})
	// query_stream is the NDJSON streaming variant: one QuerySeries JSON
	// object per line, written (and flushed) as each series is evaluated,
	// so a client can process early series while the backend is still
	// decoding later ones. Series arrive in the backend's evaluation order,
	// not sorted by labels. A mid-stream failure — headers are already out
	// — is reported as a final {"error": "..."} line.
	mux.HandleFunc("/api/v1/query_stream", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		ms := make([]*labels.Matcher, 0, len(req.Matchers))
		for _, spec := range req.Matchers {
			m, err := spec.compile()
			if err != nil {
				httpError(w, err)
				return
			}
			ms = append(ms, m)
		}
		cursor, err := queryCursor(r.Context(), b, req.MinT, req.MaxT, ms)
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		for {
			qs, ok, err := cursor.Next()
			if err != nil {
				_ = enc.Encode(struct {
					Error string `json:"error"`
				}{Error: err.Error()})
				return
			}
			if !ok {
				return
			}
			if err := enc.Encode(qs); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	return mux
}

// queryCursor picks the backend's best streaming capability.
func queryCursor(ctx context.Context, b Backend, mint, maxt int64, ms []*labels.Matcher) (SeriesCursor, error) {
	if sb, ok := b.(StreamingBackend); ok {
		return sb.QueryStream(ctx, mint, maxt, ms...)
	}
	var series []QuerySeries
	var err error
	if cb, ok := b.(ContextBackend); ok {
		series, err = cb.QueryContext(ctx, mint, maxt, ms...)
	} else {
		series, err = b.Query(mint, maxt, ms...)
	}
	if err != nil {
		return nil, err
	}
	return &sliceCursor{series: series}, nil
}

type sliceCursor struct{ series []QuerySeries }

func (c *sliceCursor) Next() (QuerySeries, bool, error) {
	if len(c.series) == 0 {
		return QuerySeries{}, false, nil
	}
	qs := c.series[0]
	c.series = c.series[1:]
	return qs, true, nil
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, err error) {
	// A mutation against a read replica is the caller's routing mistake,
	// not a server fault: 403 tells the client to redirect writes to the
	// writer instead of retrying here.
	if errors.Is(err, core.ErrReadOnly) {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// TimeUnionBackend adapts core.DB to the Backend interface.
type TimeUnionBackend struct {
	DB *core.DB
}

// Append implements Backend.
func (b *TimeUnionBackend) Append(ls labels.Labels, t int64, v float64) (uint64, error) {
	return b.DB.Append(ls, t, v)
}

// AppendFast implements Backend.
func (b *TimeUnionBackend) AppendFast(id uint64, t int64, v float64) error {
	return b.DB.AppendFast(id, t, v)
}

// AppendGroup implements Backend.
func (b *TimeUnionBackend) AppendGroup(g labels.Labels, u []labels.Labels, t int64, vals []float64) (uint64, []int, error) {
	return b.DB.AppendGroup(g, u, t, vals)
}

// AppendGroupFast implements Backend.
func (b *TimeUnionBackend) AppendGroupFast(gid uint64, slots []int, t int64, vals []float64) error {
	return b.DB.AppendGroupFast(gid, slots, t, vals)
}

// Query implements Backend.
func (b *TimeUnionBackend) Query(mint, maxt int64, ms ...*labels.Matcher) ([]QuerySeries, error) {
	return b.QueryContext(context.Background(), mint, maxt, ms...)
}

// QueryStream implements StreamingBackend over the engine's lazy
// QuerySeriesSet: each series' chunks decode only when the cursor reaches
// it, so early series reach the wire while later ones are still cold.
func (b *TimeUnionBackend) QueryStream(ctx context.Context, mint, maxt int64, ms ...*labels.Matcher) (SeriesCursor, error) {
	set, err := b.DB.QuerySeriesSet(ctx, mint, maxt, ms...)
	if err != nil {
		return nil, err
	}
	return &seriesSetCursor{set: set}, nil
}

type seriesSetCursor struct{ set core.SeriesSet }

func (c *seriesSetCursor) Next() (QuerySeries, bool, error) {
	if !c.set.Next() {
		return QuerySeries{}, false, c.set.Err()
	}
	e := c.set.At()
	qs := QuerySeries{Labels: map[string]string{}}
	for _, l := range e.Labels {
		qs.Labels[l.Name] = l.Value
	}
	for e.Iterator.Next() {
		t, v := e.Iterator.At()
		qs.Samples = append(qs.Samples, Sample{T: t, V: v})
	}
	if err := e.Iterator.Err(); err != nil {
		return QuerySeries{}, false, err
	}
	return qs, true, nil
}

// QueryContext implements ContextBackend, forwarding cancellation and any
// attached trace down to the engine.
func (b *TimeUnionBackend) QueryContext(ctx context.Context, mint, maxt int64, ms ...*labels.Matcher) ([]QuerySeries, error) {
	res, err := b.DB.QueryContext(ctx, mint, maxt, ms...)
	if err != nil {
		return nil, err
	}
	out := make([]QuerySeries, 0, len(res))
	for _, s := range res {
		qs := QuerySeries{Labels: map[string]string{}}
		for _, l := range s.Labels {
			qs.Labels[l.Name] = l.Value
		}
		for _, p := range s.Samples {
			qs.Samples = append(qs.Samples, Sample{T: p.T, V: p.V})
		}
		out = append(out, qs)
	}
	return out, nil
}

// CortexSim is the Cortex stand-in: the tsdb engine behind the same HTTP
// API, with an internal hop latency added to every operation batch (the
// gRPC communication of Cortex's distributor→ingester path, which the
// paper names as the reason Cortex's insert throughput trails TU by 26.6%).
// Cortex has no fast-path or group APIs (§4.2: "Cortex does not support
// fast-path insertion"): those calls fall back to the slow path.
type CortexSim struct {
	DB *tsdb.DB
	// HopLatency is the injected per-request internal RPC cost.
	HopLatency time.Duration

	hopCount atomic.Int64
}

func (c *CortexSim) hop() {
	c.hopCount.Add(1)
	if c.HopLatency > 0 {
		time.Sleep(c.HopLatency)
	}
}

// Hops returns how many internal RPC hops were simulated.
func (c *CortexSim) Hops() int64 { return c.hopCount.Load() }

// Append implements Backend.
func (c *CortexSim) Append(ls labels.Labels, t int64, v float64) (uint64, error) {
	c.hop()
	return c.DB.Append(ls, t, v)
}

// AppendFast implements Backend. Cortex has no fast path; it re-resolves
// by ID through the engine, paying the hop regardless.
func (c *CortexSim) AppendFast(id uint64, t int64, v float64) error {
	c.hop()
	return c.DB.AppendFast(id, t, v)
}

// AppendGroup implements Backend: no group model — every member is written
// as an individual series with the union of tags.
func (c *CortexSim) AppendGroup(g labels.Labels, u []labels.Labels, t int64, vals []float64) (uint64, []int, error) {
	c.hop()
	for i, unique := range u {
		if _, err := c.DB.Append(labels.Merge(g, unique), t, vals[i]); err != nil {
			return 0, nil, err
		}
	}
	return 0, nil, nil
}

// AppendGroupFast implements Backend; unsupported in Cortex.
func (c *CortexSim) AppendGroupFast(gid uint64, slots []int, t int64, vals []float64) error {
	return fmt.Errorf("remote: cortex-sim has no group fast path")
}

// Query implements Backend.
func (c *CortexSim) Query(mint, maxt int64, ms ...*labels.Matcher) ([]QuerySeries, error) {
	c.hop()
	res, err := c.DB.Query(mint, maxt, ms...)
	if err != nil {
		return nil, err
	}
	out := make([]QuerySeries, 0, len(res))
	for _, s := range res {
		qs := QuerySeries{Labels: map[string]string{}}
		for _, l := range s.Labels {
			qs.Labels[l.Name] = l.Value
		}
		for _, p := range s.Samples {
			qs.Samples = append(qs.Samples, Sample{T: p.T, V: p.V})
		}
		out = append(out, qs)
	}
	return out, nil
}
