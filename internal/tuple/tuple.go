// Package tuple defines the value format stored in the time-partitioned
// LSM-tree and the operations the tree needs on it. A value is an envelope:
//
//	uvarint sequence ID | kind byte | chunk payload
//
// The sequence ID is embedded at the beginning of the serialized bytes so
// the flush of a memtable can emit WAL flush marks (paper §3.3 "Logging").
// The kind selects the payload encoding: an individual series chunk
// (Gorilla XOR) or a group tuple (shared timestamp column + per-member
// value columns).
//
// The package also implements the two operators the LSM applies during
// flush and compaction: Split (bound a chunk's samples to time-partition
// windows) and Merge (combine two chunks of the same key, newest samples
// winning).
package tuple

import (
	"fmt"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
)

// Kind discriminates the payload encoding.
type Kind byte

const (
	// KindSeries marks an individual-series XOR chunk payload.
	KindSeries Kind = 1
	// KindGroup marks a group tuple payload.
	KindGroup Kind = 2
)

// Encode wraps a chunk payload in the value envelope.
func Encode(seq uint64, kind Kind, payload []byte) []byte {
	var b encoding.Buf
	b.PutUvarint(seq)
	b.PutByte(byte(kind))
	b.PutBytes(payload)
	return b.Get()
}

// Decode unwraps a value envelope. The payload aliases v.
func Decode(v []byte) (seq uint64, kind Kind, payload []byte, err error) {
	d := encoding.NewDecbuf(v)
	seq = d.Uvarint()
	kind = Kind(d.Byte())
	if d.Err() != nil {
		return 0, 0, nil, fmt.Errorf("tuple: decode envelope: %w", d.Err())
	}
	if kind != KindSeries && kind != KindGroup {
		return 0, 0, nil, fmt.Errorf("tuple: unknown kind %d", kind)
	}
	return seq, kind, d.B, nil
}

// SeqOf extracts the embedded sequence ID (0 on corrupt input).
func SeqOf(v []byte) uint64 {
	seq, _, _, err := Decode(v)
	if err != nil {
		return 0
	}
	return seq
}

// TimeRange returns the [min, max] sample timestamps in the value.
func TimeRange(v []byte) (int64, int64, error) {
	_, kind, payload, err := Decode(v)
	if err != nil {
		return 0, 0, err
	}
	switch kind {
	case KindSeries:
		samples, err := chunkenc.DecodeXORSamples(payload)
		if err != nil {
			return 0, 0, err
		}
		if len(samples) == 0 {
			return 0, 0, fmt.Errorf("tuple: empty series chunk")
		}
		return samples[0].T, samples[len(samples)-1].T, nil
	default:
		g, err := chunkenc.DecodeGroupData(payload)
		if err != nil {
			return 0, 0, err
		}
		if len(g.Times) == 0 {
			return 0, 0, fmt.Errorf("tuple: empty group tuple")
		}
		return g.MinTime(), g.MaxTime(), nil
	}
}

// KV is a key-value pair produced by Split.
type KV struct {
	Key   encoding.Key
	Value []byte
}

// Split bounds a chunk's samples to time-partition windows of length
// partLen anchored at multiples of partLen (paper §3.3: "the data samples
// of the data chunks in the SSTables of a specific time partition are
// strictly bounded by the time range of the partition"). The result is one
// KV per non-empty window, keyed by (id, first sample time in window),
// in time order. A chunk entirely inside one window is returned as-is
// without re-encoding.
func Split(key encoding.Key, value []byte, partLen int64) ([]KV, error) {
	if partLen <= 0 {
		return []KV{{Key: key, Value: value}}, nil
	}
	seq, kind, payload, err := Decode(value)
	if err != nil {
		return nil, err
	}
	minT, maxT, err := TimeRange(value)
	if err != nil {
		return nil, err
	}
	if windowStart(minT, partLen) == windowStart(maxT, partLen) {
		return []KV{{Key: key, Value: value}}, nil
	}
	id := key.ID()
	switch kind {
	case KindSeries:
		samples, err := chunkenc.DecodeXORSamples(payload)
		if err != nil {
			return nil, err
		}
		var out []KV
		for start := 0; start < len(samples); {
			w := windowStart(samples[start].T, partLen)
			end := start + 1
			for end < len(samples) && windowStart(samples[end].T, partLen) == w {
				end++
			}
			enc, err := chunkenc.EncodeXORSamples(samples[start:end])
			if err != nil {
				return nil, err
			}
			out = append(out, KV{
				Key:   encoding.MakeKey(id, samples[start].T),
				Value: Encode(seq, KindSeries, enc),
			})
			start = end
		}
		return out, nil
	default:
		g, err := chunkenc.DecodeGroupData(payload)
		if err != nil {
			return nil, err
		}
		var out []KV
		for start := 0; start < len(g.Times); {
			w := windowStart(g.Times[start], partLen)
			end := start + 1
			for end < len(g.Times) && windowStart(g.Times[end], partLen) == w {
				end++
			}
			part := sliceGroup(g, start, end)
			enc, err := part.Encode()
			if err != nil {
				return nil, err
			}
			out = append(out, KV{
				Key:   encoding.MakeKey(id, g.Times[start]),
				Value: Encode(seq, KindGroup, enc),
			})
			start = end
		}
		return out, nil
	}
}

func sliceGroup(g *chunkenc.GroupData, start, end int) *chunkenc.GroupData {
	out := &chunkenc.GroupData{Times: g.Times[start:end]}
	for _, col := range g.Columns {
		out.Columns = append(out.Columns, chunkenc.GroupColumn{
			Slot:   col.Slot,
			Values: col.Values[start:end],
			Nulls:  col.Nulls[start:end],
		})
	}
	return out
}

func windowStart(t, partLen int64) int64 {
	w := t / partLen
	if t < 0 && t%partLen != 0 {
		w--
	}
	return w * partLen
}

// WindowStart returns the partition window start containing t for a grid
// of length partLen (floor division, correct for negative timestamps).
func WindowStart(t, partLen int64) int64 { return windowStart(t, partLen) }

// Merge combines two values of the same key. Samples from newer replace
// samples from older at equal timestamps (paper §3.3: "keep the data sample
// from the newest SSTable"); the resulting sequence ID is the larger one.
// Merging a series chunk with a group tuple is an error: the ID space keeps
// them apart.
func Merge(older, newer []byte) ([]byte, error) {
	oseq, okind, opay, err := Decode(older)
	if err != nil {
		return nil, err
	}
	nseq, nkind, npay, err := Decode(newer)
	if err != nil {
		return nil, err
	}
	if okind != nkind {
		return nil, fmt.Errorf("tuple: merging kind %d with kind %d", okind, nkind)
	}
	seq := oseq
	if nseq > seq {
		seq = nseq
	}
	switch okind {
	case KindSeries:
		os, err := chunkenc.DecodeXORSamples(opay)
		if err != nil {
			return nil, err
		}
		ns, err := chunkenc.DecodeXORSamples(npay)
		if err != nil {
			return nil, err
		}
		enc, err := chunkenc.EncodeXORSamples(chunkenc.MergeSamples(os, ns))
		if err != nil {
			return nil, err
		}
		return Encode(seq, KindSeries, enc), nil
	default:
		og, err := chunkenc.DecodeGroupData(opay)
		if err != nil {
			return nil, err
		}
		ng, err := chunkenc.DecodeGroupData(npay)
		if err != nil {
			return nil, err
		}
		enc, err := chunkenc.MergeGroupData(og, ng).Encode()
		if err != nil {
			return nil, err
		}
		return Encode(seq, KindGroup, enc), nil
	}
}
