// Quickstart: open a TimeUnion database on local directories standing in
// for the two cloud tiers, insert a few timeseries with the slow- and
// fast-path APIs, and query them back with tag selectors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
)

func main() {
	dir, err := os.MkdirTemp("", "timeunion-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The fast tier is a block store (EBS-like), the slow tier an object
	// store (S3-like). Locally both are directories with latency models.
	fast, err := cloud.NewDirStore(filepath.Join(dir, "fast"), cloud.TierBlock, cloud.EBSModel(0))
	if err != nil {
		log.Fatal(err)
	}
	slow, err := cloud.NewDirStore(filepath.Join(dir, "slow"), cloud.TierObject, cloud.S3Model(0))
	if err != nil {
		log.Fatal(err)
	}

	db, err := core.Open(core.Options{
		Dir:  filepath.Join(dir, "local"), // WAL + mmap arrays
		Fast: fast,
		Slow: slow,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Slow path: the first insert of a series carries its full tag set and
	// returns a series ID.
	cpuID, err := db.Append(labels.FromStrings(
		"measurement", "cpu", "field", "usage_user", "hostname", "web-1",
	), 1_000, 12.5)
	if err != nil {
		log.Fatal(err)
	}

	// Fast path: subsequent inserts pass only the ID (paper §3.4).
	for i := int64(1); i <= 120; i++ {
		if err := db.AppendFast(cpuID, 1_000+i*10_000, 10+float64(i%7)); err != nil {
			log.Fatal(err)
		}
	}

	// A second series to select against.
	if _, err := db.Append(labels.FromStrings(
		"measurement", "cpu", "field", "usage_user", "hostname", "web-2",
	), 1_000, 50); err != nil {
		log.Fatal(err)
	}

	// Query by exact tag and by regular expression.
	res, err := db.Query(0, 2_000_000,
		labels.MustEqual("measurement", "cpu"),
		labels.MustMatcher(labels.MatchRegexp, "hostname", "web-.*"),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res {
		fmt.Printf("%s: %d samples", s.Labels, len(s.Samples))
		if n := len(s.Samples); n > 0 {
			fmt.Printf(", last = %.1f @ %d", s.Samples[n-1].V, s.Samples[n-1].T)
		}
		fmt.Println()
	}

	st := db.Stats()
	fmt.Printf("series=%d fast=%dB slow=%dB memory=%dB\n",
		st.NumSeries, st.FastBytes, st.SlowBytes, st.Memory.Total())
}
