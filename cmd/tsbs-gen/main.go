// Command tsbs-gen emits a TSBS-DevOps-shaped dataset as line-delimited
// JSON: one object per (timestamp, host) round with all 101 series values.
// Useful for feeding the HTTP API of tuserve or external tooling.
//
// Usage:
//
//	tsbs-gen -hosts 4 -hours 2 -interval 30000 > devops.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"timeunion/internal/tsbs"
)

type row struct {
	T      int64              `json:"t"`
	Host   string             `json:"host"`
	Tags   map[string]string  `json:"tags"`
	Values map[string]float64 `json:"values"`
}

func main() {
	var (
		hosts    = flag.Int("hosts", 4, "number of hosts")
		hours    = flag.Int("hours", 2, "hours of data")
		hourMs   = flag.Int64("hourms", 3_600_000, "length of one hour in ms")
		interval = flag.Int64("interval", 30_000, "sample interval in ms")
		seed     = flag.Int64("seed", 2022, "generator seed")
	)
	flag.Parse()

	hs := tsbs.Hosts(*hosts, *seed)
	gen := tsbs.NewGenerator(hs, *interval, *interval, *seed+7)
	rounds := int(int64(*hours) * *hourMs / *interval)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for i := 0; i < rounds; i++ {
		t, vals := gen.Round()
		for hi, h := range hs {
			r := row{T: t, Host: h.Hostname(), Tags: map[string]string{}, Values: map[string]float64{}}
			for _, l := range h.Tags {
				r.Tags[l.Name] = l.Value
			}
			for si, v := range vals[hi] {
				ls := tsbs.SeriesTags(si)
				r.Values[ls.Get("measurement")+"."+ls.Get("field")] = v
			}
			if err := enc.Encode(r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
