package lsm

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"timeunion/internal/cloud"
	"timeunion/internal/sstable"
)

// adjustPartitionLengthsLocked implements Algorithm 1 (dynamic size
// control): when the fast-store footprint of levels 0-1 exceeds the budget
// ST, the partition lengths halve (bounded below by LB) so less data stays
// on the fast tier; when level 1 already spans a full L2 partition but the
// footprint is well under budget, the lengths double so more data stays on
// the fast tier. Lengths move by factors of two to keep partitions aligned
// across compactions (§3.3). Must be called with l.mu held.
func (l *LSM) adjustPartitionLengthsLocked() {
	st := l.opts.FastLimit
	if st <= 0 {
		return
	}
	var total int64
	for _, lvl := range [][]*partition{l.l0, l.l1} {
		for _, p := range lvl {
			total += p.sizeBytes()
		}
	}
	if total == 0 {
		return
	}
	lb := l.opts.PartitionLengthLowerBound
	ratio := l.r2 / l.r1
	if ratio < 1 {
		ratio = 1
	}
	// thres is the partition length at which the current data density
	// would exactly fill the budget.
	thres := float64(st) / float64(total) * float64(l.r1)
	if total > st {
		shrunk := false
		for float64(l.r1) > thres && l.r1/2 >= lb {
			l.r1 /= 2
			shrunk = true
		}
		if shrunk {
			l.r2 = l.r1 * ratio
			l.stats.shrinks.Add(1)
		}
		return
	}
	// Grow only when clearly underutilized (hysteresis: half the budget)
	// and only after level 1 has accumulated a full L2 partition of span —
	// the paper's "the overall time span of level 1 is large enough". One
	// doubling per adjustment: the span gate then naturally re-arms only
	// after enough new data arrives, so sparse data cannot balloon the
	// partitions in a single step and stall slow-tier shipping forever.
	var l1Span int64
	if len(l.l1) > 0 {
		l1Span = l.l1[len(l.l1)-1].maxT - l.l1[0].minT
	}
	if total*2 <= st && l1Span >= l.r2 && float64(l.r1)*2 <= thres/2 {
		l.r1 *= 2
		l.r2 = l.r1 * ratio
		l.stats.grows.Add(1)
	}
}

// ApplyRetention removes every partition whose data is entirely older than
// the watermark (paper §3.3 "Data retention": "the SSTables contained in
// those old partitions can be removed efficiently"). It returns the number
// of partitions dropped.
func (l *LSM) ApplyRetention(watermark int64) int {
	l.mu.Lock()
	var dropped []*partition
	keep := func(parts []*partition) []*partition {
		out := parts[:0]
		for _, p := range parts {
			if p.maxT <= watermark {
				dropped = append(dropped, p)
			} else {
				out = append(out, p)
			}
		}
		return out
	}
	l.l0 = keep(l.l0)
	l.l1 = keep(l.l1)
	l.l2 = keep(l.l2)
	l.mu.Unlock()

	for _, p := range dropped {
		for _, h := range allTables(p) {
			h.markObsolete()
		}
	}
	l.stats.dropped.Add(uint64(len(dropped)))
	return len(dropped)
}

// recoverLevels rebuilds the tree metadata from store listings. Placement
// is encoded in object key names (level and partition window), per-table ID
// ranges come from the tables' own key bounds, and patch association is
// encoded in the patch file name.
func (l *LSM) recoverLevels() error {
	var maxSeq uint64
	load := func(store cloud.Store, prefix string) ([]*partition, error) {
		keys, err := store.List(prefix)
		if err != nil {
			return nil, fmt.Errorf("lsm: recover list %s: %w", prefix, err)
		}
		type patchRec struct {
			baseSeq uint64
			h       *tableHandle
		}
		parts := map[string]*partition{}
		patchesByPart := map[string][]patchRec{}
		var order []string
		for _, key := range keys {
			minT, maxT, baseSeq, seq, isPatch, err := parseTableName(key)
			if err != nil {
				continue // foreign object in the bucket: skip
			}
			dir := key[:strings.LastIndex(key, "/")]
			p := parts[dir]
			if p == nil {
				p = &partition{minT: minT, maxT: maxT}
				parts[dir] = p
				order = append(order, dir)
			}
			tbl, err := sstable.OpenTable(store, key, l.cacheFor(store))
			if err != nil {
				if errors.Is(err, sstable.ErrCorrupt) {
					// A structurally invalid table can only be a torn write:
					// flush marks (and WAL purge) happen strictly after every
					// table of a flush is durably stored, so this table's data
					// is still in the WAL and will be replayed. Quarantine it.
					_ = store.Delete(key)
					l.stats.quarantined.Add(1)
					continue
				}
				return nil, fmt.Errorf("lsm: recover open %s: %w", key, err)
			}
			h := newTableHandle(tbl, store, key, seq)
			if seq > maxSeq {
				maxSeq = seq
			}
			if isPatch {
				patchesByPart[dir] = append(patchesByPart[dir], patchRec{baseSeq: baseSeq, h: h})
			} else {
				p.tables = append(p.tables, h)
			}
		}
		var out []*partition
		for _, dir := range order {
			p := parts[dir]
			// Base tables sorted by first key (disjoint ID ranges).
			sort.Slice(p.tables, func(i, j int) bool {
				return string(p.tables[i].tbl.FirstKey()) < string(p.tables[j].tbl.FirstKey())
			})
			p.patches = make([][]*tableHandle, len(p.tables))
			recs := patchesByPart[dir]
			sort.Slice(recs, func(i, j int) bool { return recs[i].h.seq < recs[j].h.seq })
			for _, rec := range recs {
				attached := false
				for i, base := range p.tables {
					if base.seq == rec.baseSeq {
						p.patches[i] = append(p.patches[i], rec.h)
						attached = true
						break
					}
				}
				if !attached && len(p.tables) > 0 {
					// Base was replaced by a split-merge before this patch's
					// metadata was dropped: attach to the first table, which
					// preserves query correctness (rank still orders it).
					p.patches[0] = append(p.patches[0], rec.h)
				}
			}
			out = append(out, p)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].minT < out[j].minT })
		return out, nil
	}

	var err error
	if l.l0, err = load(l.opts.Fast, "l0/"); err != nil {
		return err
	}
	if l.l1, err = load(l.opts.Fast, "l1/"); err != nil {
		return err
	}
	if l.l2, err = load(l.opts.Slow, "l2/"); err != nil {
		return err
	}
	l.fileSeq.Store(maxSeq)
	return nil
}

// parseTableName decodes "l{n}/{minT}-{maxT}/{seq}.sst" and patch names
// "l2/{minT}-{maxT}/{baseSeq}-p{seq}.sst" (timestamps biased by 2^63 so
// they sort as fixed-width decimals).
func parseTableName(key string) (minT, maxT int64, baseSeq, seq uint64, isPatch bool, err error) {
	parts := strings.Split(key, "/")
	if len(parts) != 3 || !strings.HasSuffix(parts[2], ".sst") {
		return 0, 0, 0, 0, false, fmt.Errorf("lsm: bad table name %q", key)
	}
	var lo, hi uint64
	if _, err := fmt.Sscanf(parts[1], "%d-%d", &lo, &hi); err != nil {
		return 0, 0, 0, 0, false, fmt.Errorf("lsm: bad partition dir %q", key)
	}
	minT = int64(lo - 1<<63)
	maxT = int64(hi - 1<<63)
	base := strings.TrimSuffix(parts[2], ".sst")
	if i := strings.Index(base, "-p"); i >= 0 {
		if _, err := fmt.Sscanf(base[:i], "%x", &baseSeq); err != nil {
			return 0, 0, 0, 0, false, fmt.Errorf("lsm: bad patch name %q", key)
		}
		if _, err := fmt.Sscanf(base[i+2:], "%x", &seq); err != nil {
			return 0, 0, 0, 0, false, fmt.Errorf("lsm: bad patch name %q", key)
		}
		return minT, maxT, baseSeq, seq, true, nil
	}
	if _, err := fmt.Sscanf(base, "%x", &seq); err != nil {
		return 0, 0, 0, 0, false, fmt.Errorf("lsm: bad table name %q", key)
	}
	return minT, maxT, 0, seq, false, nil
}
