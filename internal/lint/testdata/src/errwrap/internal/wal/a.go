// Package wal is the errwrap fixture: durability packages must wrap error
// operands with %w and must not silently discard Sync/Close errors.
package wal

import (
	"fmt"
	"os"
)

func wrapOK(err error) error {
	return fmt.Errorf("wal: roll: %w", err)
}

func flattenedV(err error) error {
	return fmt.Errorf("wal: roll: %v", err) // want "formatted with %v"
}

func flattenedS(err error) error {
	return fmt.Errorf("wal: %s failed: %s", "sync", err) // want "formatted with %s"
}

func nonErrorOperand(key string, err error) error {
	return fmt.Errorf("wal: put %v: %w", key, err) // ok: %v formats a string
}

func multiWrap(e1, e2 error) error {
	return fmt.Errorf("wal: %w then %w", e1, e2) // ok: both wrapped
}

func discarded(f *os.File) {
	f.Sync()  // want "Sync.. error discarded"
	f.Close() // want "Close.. error discarded"
}

func deferDiscarded(f *os.File) error {
	defer f.Close() // want "defer Close.. error discarded"
	return nil
}

func explicitDiscard(f *os.File) {
	_ = f.Sync() // ok: auditable, deliberate
}

func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return f.Close()
}

// closer has a Close without an error result; bare calls are fine.
type closer struct{}

func (closer) Close() {}

func noResultClose(c closer) {
	c.Close() // ok: returns nothing to discard
}
