// Package encoding provides the low-level byte encoding primitives shared by
// the TimeUnion storage engine: unsigned/signed varints, big-endian fixed
// integers, length-prefixed byte slices, and the 16-byte LSM key codec that
// orders chunks by (series ID, chunk start timestamp).
package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Common decode errors.
var (
	ErrShortBuffer = errors.New("encoding: buffer too short")
	ErrOverflow    = errors.New("encoding: varint overflows 64 bits")
)

// Buf is an append-only encode buffer. The zero value is ready to use.
type Buf struct {
	B []byte
}

// Reset truncates the buffer to zero length, retaining capacity.
func (b *Buf) Reset() { b.B = b.B[:0] }

// Len returns the number of encoded bytes.
func (b *Buf) Len() int { return len(b.B) }

// Get returns the encoded bytes. The slice aliases the buffer.
func (b *Buf) Get() []byte { return b.B }

// PutByte appends a single byte.
func (b *Buf) PutByte(c byte) { b.B = append(b.B, c) }

// PutBytes appends raw bytes.
func (b *Buf) PutBytes(p []byte) { b.B = append(b.B, p...) }

// PutString appends raw string bytes.
func (b *Buf) PutString(s string) { b.B = append(b.B, s...) }

// PutBE16 appends v in big-endian order.
func (b *Buf) PutBE16(v uint16) {
	b.B = append(b.B, byte(v>>8), byte(v))
}

// PutBE32 appends v in big-endian order.
func (b *Buf) PutBE32(v uint32) {
	b.B = binary.BigEndian.AppendUint32(b.B, v)
}

// PutBE64 appends v in big-endian order.
func (b *Buf) PutBE64(v uint64) {
	b.B = binary.BigEndian.AppendUint64(b.B, v)
}

// PutUvarint appends v in unsigned LEB128.
func (b *Buf) PutUvarint(v uint64) {
	b.B = binary.AppendUvarint(b.B, v)
}

// PutVarint appends v in zig-zag LEB128.
func (b *Buf) PutVarint(v int64) {
	b.B = binary.AppendVarint(b.B, v)
}

// PutUvarintBytes appends a length-prefixed byte slice.
func (b *Buf) PutUvarintBytes(p []byte) {
	b.PutUvarint(uint64(len(p)))
	b.PutBytes(p)
}

// PutUvarintString appends a length-prefixed string.
func (b *Buf) PutUvarintString(s string) {
	b.PutUvarint(uint64(len(s)))
	b.PutString(s)
}

// Decbuf is a decode cursor over a byte slice. The first decoding error
// sticks: all subsequent reads return zero values and Err reports the error.
type Decbuf struct {
	B []byte
	E error
}

// NewDecbuf returns a decoder over p.
func NewDecbuf(p []byte) Decbuf { return Decbuf{B: p} }

// Err returns the first error encountered while decoding, if any.
func (d *Decbuf) Err() error { return d.E }

// Len returns the number of undecoded bytes remaining.
func (d *Decbuf) Len() int { return len(d.B) }

// Byte decodes a single byte.
func (d *Decbuf) Byte() byte {
	if d.E != nil {
		return 0
	}
	if len(d.B) < 1 {
		d.E = ErrShortBuffer
		return 0
	}
	c := d.B[0]
	d.B = d.B[1:]
	return c
}

// Bytes decodes n raw bytes. The returned slice aliases the input.
func (d *Decbuf) Bytes(n int) []byte {
	if d.E != nil {
		return nil
	}
	if n < 0 || len(d.B) < n {
		d.E = ErrShortBuffer
		return nil
	}
	p := d.B[:n]
	d.B = d.B[n:]
	return p
}

// BE16 decodes a big-endian uint16.
func (d *Decbuf) BE16() uint16 {
	p := d.Bytes(2)
	if p == nil {
		return 0
	}
	return uint16(p[0])<<8 | uint16(p[1])
}

// BE32 decodes a big-endian uint32.
func (d *Decbuf) BE32() uint32 {
	p := d.Bytes(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// BE64 decodes a big-endian uint64.
func (d *Decbuf) BE64() uint64 {
	p := d.Bytes(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// Uvarint decodes an unsigned LEB128 integer.
func (d *Decbuf) Uvarint() uint64 {
	if d.E != nil {
		return 0
	}
	v, n := binary.Uvarint(d.B)
	if n == 0 {
		d.E = ErrShortBuffer
		return 0
	}
	if n < 0 {
		d.E = ErrOverflow
		return 0
	}
	d.B = d.B[n:]
	return v
}

// Varint decodes a zig-zag LEB128 integer.
func (d *Decbuf) Varint() int64 {
	if d.E != nil {
		return 0
	}
	v, n := binary.Varint(d.B)
	if n == 0 {
		d.E = ErrShortBuffer
		return 0
	}
	if n < 0 {
		d.E = ErrOverflow
		return 0
	}
	d.B = d.B[n:]
	return v
}

// UvarintBytes decodes a length-prefixed byte slice (aliasing the input).
func (d *Decbuf) UvarintBytes() []byte {
	n := d.Uvarint()
	if d.E != nil {
		return nil
	}
	if n > uint64(len(d.B)) {
		d.E = ErrShortBuffer
		return nil
	}
	return d.Bytes(int(n))
}

// UvarintString decodes a length-prefixed string (copying).
func (d *Decbuf) UvarintString() string {
	return string(d.UvarintBytes())
}

// KeyLen is the fixed length of a TimeUnion LSM key: 8-byte big-endian
// series/group ID followed by an 8-byte big-endian chunk start timestamp.
// Big-endian encoding makes lexicographic byte order equal (ID, time) order,
// which groups the chunks of one series contiguously and sorts them by time
// (paper §3.3, Figure 10).
const KeyLen = 16

// Key is the fixed 16-byte LSM key.
type Key [KeyLen]byte

// MakeKey encodes (id, startT) into a key. Timestamps are biased by 2^63 so
// that negative timestamps still sort correctly as unsigned bytes.
func MakeKey(id uint64, startT int64) Key {
	var k Key
	binary.BigEndian.PutUint64(k[:8], id)
	binary.BigEndian.PutUint64(k[8:], uint64(startT)+1<<63)
	return k
}

// ID extracts the series/group ID from the key.
func (k Key) ID() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// StartT extracts the chunk start timestamp from the key.
func (k Key) StartT() int64 {
	return int64(binary.BigEndian.Uint64(k[8:]) - 1<<63)
}

// String renders the key for debugging.
func (k Key) String() string {
	return fmt.Sprintf("%d@%d", k.ID(), k.StartT())
}

// ParseKey decodes a 16-byte key from p.
func ParseKey(p []byte) (Key, error) {
	var k Key
	if len(p) != KeyLen {
		return k, fmt.Errorf("encoding: key length %d, want %d: %w", len(p), KeyLen, ErrShortBuffer)
	}
	copy(k[:], p)
	return k, nil
}
