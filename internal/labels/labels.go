// Package labels implements the tag-pair identifier model of TimeUnion's
// unified data model (paper §3.1). A timeseries identifier is a sorted set
// of tag pairs; a group identifier is the shared subset of tag pairs of its
// members, with each member keeping only its unique tags.
package labels

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Label is a single tag pair.
type Label struct {
	Name  string
	Value string
}

// Labels is a set of tag pairs sorted by name (then value). Callers should
// construct Labels through New or FromMap to maintain the sort invariant.
type Labels []Label

// New returns a sorted Labels from the given pairs.
func New(ls ...Label) Labels {
	set := make(Labels, len(ls))
	copy(set, ls)
	sort.Sort(set)
	return set
}

// FromStrings constructs Labels from alternating name/value strings.
// It panics if given an odd number of arguments: that is a programming
// error, not a data error.
func FromStrings(ss ...string) Labels {
	if len(ss)%2 != 0 {
		panic("labels: FromStrings with odd argument count")
	}
	ls := make(Labels, 0, len(ss)/2)
	for i := 0; i < len(ss); i += 2 {
		ls = append(ls, Label{Name: ss[i], Value: ss[i+1]})
	}
	sort.Sort(ls)
	return ls
}

// FromMap constructs sorted Labels from a map.
func FromMap(m map[string]string) Labels {
	ls := make(Labels, 0, len(m))
	for k, v := range m {
		ls = append(ls, Label{Name: k, Value: v})
	}
	sort.Sort(ls)
	return ls
}

func (ls Labels) Len() int      { return len(ls) }
func (ls Labels) Swap(i, j int) { ls[i], ls[j] = ls[j], ls[i] }
func (ls Labels) Less(i, j int) bool {
	if ls[i].Name != ls[j].Name {
		return ls[i].Name < ls[j].Name
	}
	return ls[i].Value < ls[j].Value
}

// Get returns the value of the label with the given name, or "".
func (ls Labels) Get(name string) string {
	for _, l := range ls {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Has reports whether a label with the given name exists.
func (ls Labels) Has(name string) bool {
	for _, l := range ls {
		if l.Name == name {
			return true
		}
	}
	return false
}

// Equal reports whether two label sets are identical.
func (ls Labels) Equal(o Labels) bool {
	if len(ls) != len(o) {
		return false
	}
	for i, l := range ls {
		if l != o[i] {
			return false
		}
	}
	return true
}

// Compare lexicographically compares two sorted label sets.
func (ls Labels) Compare(o Labels) int {
	for i := 0; i < len(ls) && i < len(o); i++ {
		if c := strings.Compare(ls[i].Name, o[i].Name); c != 0 {
			return c
		}
		if c := strings.Compare(ls[i].Value, o[i].Value); c != 0 {
			return c
		}
	}
	switch {
	case len(ls) < len(o):
		return -1
	case len(ls) > len(o):
		return 1
	}
	return 0
}

// Copy returns an independent copy of ls.
func (ls Labels) Copy() Labels {
	c := make(Labels, len(ls))
	copy(c, ls)
	return c
}

// String renders the label set as {a="1", b="2"}.
func (ls Labels) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Key returns a canonical string key for the full label set, usable as a
// map key. The separator bytes cannot appear in tag names or values
// produced by TSBS workloads.
func (ls Labels) Key() string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte(0xff)
		b.WriteString(l.Value)
		b.WriteByte(0xfe)
	}
	return b.String()
}

// Bytes appends a deterministic binary encoding of ls to dst: a uvarint
// count followed by length-prefixed name/value pairs.
func (ls Labels) Bytes(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(ls)))
	for _, l := range ls {
		dst = appendUvarint(dst, uint64(len(l.Name)))
		dst = append(dst, l.Name...)
		dst = appendUvarint(dst, uint64(len(l.Value)))
		dst = append(dst, l.Value...)
	}
	return dst
}

// SizeBytes returns the approximate in-memory footprint of the tag strings.
func (ls Labels) SizeBytes() int {
	n := 0
	for _, l := range ls {
		n += len(l.Name) + len(l.Value)
	}
	return n
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// DecodeLabels decodes Labels encoded by Bytes, returning the remainder.
func DecodeLabels(p []byte) (Labels, []byte, error) {
	n, p, err := readUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	ls := make(Labels, 0, n)
	for i := uint64(0); i < n; i++ {
		var name, value string
		name, p, err = readString(p)
		if err != nil {
			return nil, nil, err
		}
		value, p, err = readString(p)
		if err != nil {
			return nil, nil, err
		}
		ls = append(ls, Label{Name: name, Value: value})
	}
	return ls, p, nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	var v uint64
	var shift uint
	for i, c := range p {
		if shift >= 64 {
			return 0, nil, fmt.Errorf("labels: uvarint overflow")
		}
		if c < 0x80 {
			return v | uint64(c)<<shift, p[i+1:], nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, nil, fmt.Errorf("labels: truncated uvarint")
}

func readString(p []byte) (string, []byte, error) {
	n, p, err := readUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(p)) {
		return "", nil, fmt.Errorf("labels: truncated string")
	}
	return string(p[:n]), p[n:], nil
}

// SplitGroup splits a member's full tag set into (groupTags, uniqueTags)
// given the group's shared tag names (paper §3.1, Figure 6): tags whose
// names appear in groupNames are extracted as group tags; the rest uniquely
// identify the member inside the group.
func SplitGroup(full Labels, groupNames []string) (group, unique Labels) {
	isGroup := make(map[string]bool, len(groupNames))
	for _, n := range groupNames {
		isGroup[n] = true
	}
	for _, l := range full {
		if isGroup[l.Name] {
			group = append(group, l)
		} else {
			unique = append(unique, l)
		}
	}
	return group, unique
}

// Merge returns the union of two disjoint sorted label sets.
func Merge(a, b Labels) Labels {
	out := make(Labels, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Sort(out)
	return out
}

// MatchType is the kind of a tag selector.
type MatchType int

const (
	// MatchEqual selects series whose tag value equals the matcher value.
	MatchEqual MatchType = iota
	// MatchRegexp selects series whose tag value matches an anchored
	// regular expression (paper §3.4: metric="disk.*").
	MatchRegexp
	// MatchNotEqual selects series whose tag value differs.
	MatchNotEqual
	// MatchNotRegexp selects series whose tag value does not match.
	MatchNotRegexp
)

func (t MatchType) String() string {
	switch t {
	case MatchEqual:
		return "="
	case MatchRegexp:
		return "=~"
	case MatchNotEqual:
		return "!="
	case MatchNotRegexp:
		return "!~"
	}
	return "?"
}

// Matcher is a single tag selector used in queries.
type Matcher struct {
	Type  MatchType
	Name  string
	Value string

	re *regexp.Regexp
}

// NewMatcher builds a matcher; regex values are compiled anchored.
func NewMatcher(t MatchType, name, value string) (*Matcher, error) {
	m := &Matcher{Type: t, Name: name, Value: value}
	if t == MatchRegexp || t == MatchNotRegexp {
		re, err := regexp.Compile("^(?:" + value + ")$")
		if err != nil {
			return nil, fmt.Errorf("labels: bad matcher regex %q: %w", value, err)
		}
		m.re = re
	}
	return m, nil
}

// MustMatcher is NewMatcher that panics on a bad regex, for tests/examples.
func MustMatcher(t MatchType, name, value string) *Matcher {
	m, err := NewMatcher(t, name, value)
	if err != nil {
		panic(err)
	}
	return m
}

// MustEqual returns an equality matcher.
func MustEqual(name, value string) *Matcher {
	return MustMatcher(MatchEqual, name, value)
}

// Matches reports whether the matcher accepts value v.
func (m *Matcher) Matches(v string) bool {
	switch m.Type {
	case MatchEqual:
		return v == m.Value
	case MatchNotEqual:
		return v != m.Value
	case MatchRegexp:
		return m.re.MatchString(v)
	case MatchNotRegexp:
		return !m.re.MatchString(v)
	}
	return false
}

// String renders the matcher as name=~"value".
func (m *Matcher) String() string {
	return fmt.Sprintf("%s%s%q", m.Name, m.Type, m.Value)
}
