GO ?= go

.PHONY: tier1 tier1-faults tier1-obs tier1-iter race vet bench-parallel

# tier1 is the gate every change must keep green: full build + full test run.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# VETFLAGS: stdmethods false-positives on the SampleIterator Seek(int64) bool
# contract (it wants io.Seeker's signature); every other analyzer stays on.
VETFLAGS = -stdmethods=false

# tier1-faults is the crash-safety gate: vet plus 50 randomized
# crash-recovery torture schedules under the race detector, at a fixed seed
# so failures reproduce.
tier1-faults:
	$(GO) vet $(VETFLAGS) ./...
	TORTURE_SCHEDULES=50 TORTURE_SEED=20260806 $(GO) test ./internal/core -run TestCrashTorture -race -count=1

# tier1-obs is the observability gate: the obs package and the operational
# HTTP surface under the race detector, the traced-query e2e check, and the
# <5% instrumentation-overhead guard on the parallel append workload.
tier1-obs:
	$(GO) test -race -count=1 ./internal/obs ./internal/remote
	$(GO) test -race -count=1 ./internal/core -run TestQueryTraceE2E
	OBS_OVERHEAD_GUARD=1 $(GO) test -count=1 ./internal/core -run TestObsOverheadBudget

# tier1-iter is the streaming read-path gate: the iterator contract and
# streaming==materializing identity under the race detector, bounded fuzz
# passes over the merge iterator and the end-to-end query comparison, and
# one run of the narrow-range decode/alloc experiment.
tier1-iter:
	$(GO) test -race -count=1 ./internal/chunkenc ./internal/lsm
	$(GO) test -race -count=1 ./internal/core -run 'TestStreaming|TestNarrowRange'
	$(GO) test -count=1 ./internal/chunkenc -run '^$$' -fuzz FuzzMergeIterator -fuzztime 500x
	$(GO) test -count=1 ./internal/core -run '^$$' -fuzz FuzzStreamingQuery -fuzztime 25x
	$(GO) test -count=1 -run '^$$' -bench BenchmarkQueryNarrowRange -benchtime 1x .

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet $(VETFLAGS) ./...

# bench-parallel measures the parallel query / striped append speedups.
bench-parallel:
	$(GO) test -bench='QueryParallel|AppendFastParallel' -run='^$$' -benchtime=3x .
