package bench

import (
	"fmt"
	"math/rand"
	"time"

	"timeunion/internal/lsm"
	"timeunion/internal/tsbs"
)

// Fig18a regenerates Figure 18a: TimeUnion under different fast-store (EBS)
// usage limits with dynamic size control, reporting normalized insertion
// throughput and query latencies.
func Fig18a(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("fig18a", "Different EBS usage constraints",
		"limit", "insert tput", "q:1-1-1", "q:5-1-24", "final R1")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / 360 // dense 10s interval like the paper
	span := int64(cfg.SpanHours) * cfg.HourMs
	rounds := int(span / interval)

	// Sweep budgets from tight to loose.
	base := int64(128 << 10)
	limits := []int64{base, base * 4, base * 16, base * 64}

	for _, limit := range limits {
		ec := newEngineConfig(cfg, hosts)
		ec.fastLimit = limit
		ec.dynamic = true
		e, err := newTUEngine(ec, "TU")
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)
		samples := 0
		elapsed, err := e.stores().measure(func() error {
			for round := 0; round < rounds; round++ {
				t, vals := gen.Round()
				if err := e.insertRound(t, vals); err != nil {
					return err
				}
				samples += len(hosts) * tsbs.SeriesPerHost
			}
			return e.flush()
		})
		if err != nil {
			e.close()
			return nil, err
		}
		tput := float64(samples) / elapsed.Seconds()

		env := tsbs.QueryEnv{Hosts: hosts, DataMin: 0, DataMax: span, HourMs: cfg.HourMs}
		lat := map[string]time.Duration{}
		for _, pname := range []string{"1-1-1", "5-1-24"} {
			p, _ := tsbs.PatternByName(pname)
			rnd := rand.New(rand.NewSource(cfg.Seed + 3))
			var durs []time.Duration
			for i := 0; i < cfg.QueriesPerPattern; i++ {
				q := tsbs.MakeQuery(p, env, rnd)
				d, err := e.stores().measure(func() error {
					_, _, err := e.query(q)
					return err
				})
				if err != nil {
					e.close()
					return nil, err
				}
				durs = append(durs, d)
			}
			lat[pname] = median(durs)
		}
		var r1 int64
		if tree, ok := e.db.ChunkStoreRef().(*lsm.LSM); ok {
			r1, _ = tree.PartitionLengths()
		}
		r.addRow(fmtBytes(limit),
			fmt.Sprintf("%.0f samples/s", tput),
			fmtDur(lat["1-1-1"]), fmtDur(lat["5-1-24"]),
			fmt.Sprintf("%s", fmtDur(time.Duration(r1)*time.Millisecond)))
		key := fmt.Sprintf("limit:%d", limit)
		r.Values[key+":insert"] = tput
		r.Values[key+":q111"] = lat["1-1-1"].Seconds()
		r.Values[key+":q5124"] = lat["5-1-24"].Seconds()
		if err := e.close(); err != nil {
			return nil, err
		}
	}
	r.note("paper: insertion stable across limits; short-range latency high when EBS cannot hold the last hour, then drops; long-range latency falls as the EBS limit grows")
	return r, nil
}

// Fig18b regenerates Figure 18b: different volumes of out-of-order data
// (p0/p5/p10/p20 of the normal volume) inserted after the normal load.
func Fig18b(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("fig18b", "Different amounts of out-of-order data",
		"ooo", "insert tput", "q:1-1-1", "q:5-1-24", "patches")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / 360
	span := int64(cfg.SpanHours) * cfg.HourMs
	rounds := int(span / interval)

	for _, pct := range []int{0, 5, 10, 20} {
		ec := newEngineConfig(cfg, hosts)
		e, err := newTUEngine(ec, "TU")
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)
		rnd := rand.New(rand.NewSource(cfg.Seed + int64(pct)))
		normal := rounds * len(hosts) * tsbs.SeriesPerHost
		oooCount := normal * pct / 100
		// Normal insertion phase (the paper inserts the out-of-order data
		// *after* normal insertion and reports steady-state throughput).
		samples := 0
		elapsed, err := e.stores().measure(func() error {
			for round := 0; round < rounds; round++ {
				t, vals := gen.Round()
				if err := e.insertRound(t, vals); err != nil {
					return err
				}
				samples += len(hosts) * tsbs.SeriesPerHost
			}
			return e.flush()
		})
		if err != nil {
			e.close()
			return nil, err
		}
		tput := float64(samples) / elapsed.Seconds()
		// Out-of-order backfill phase: random old samples of random series,
		// timed separately (patch creation and split-merges land here).
		oooElapsed, err := e.stores().measure(func() error {
			for i := 0; i < oooCount; i++ {
				hi := rnd.Intn(len(hosts))
				si := rnd.Intn(tsbs.SeriesPerHost)
				t := rnd.Int63n(span-interval) + 1
				if err := e.insertOutOfOrder(hi, si, t, rnd.Float64()*100); err != nil {
					return err
				}
			}
			return e.flush()
		})
		if err != nil {
			e.close()
			return nil, err
		}
		oooTput := 0.0
		if oooCount > 0 {
			oooTput = float64(oooCount) / oooElapsed.Seconds()
		}

		env := tsbs.QueryEnv{Hosts: hosts, DataMin: 0, DataMax: span, HourMs: cfg.HourMs}
		lat := map[string]time.Duration{}
		for _, pname := range []string{"1-1-1", "5-1-24"} {
			p, _ := tsbs.PatternByName(pname)
			qrnd := rand.New(rand.NewSource(cfg.Seed + 3))
			var durs []time.Duration
			for i := 0; i < cfg.QueriesPerPattern; i++ {
				q := tsbs.MakeQuery(p, env, qrnd)
				d, err := e.stores().measure(func() error {
					_, _, err := e.query(q)
					return err
				})
				if err != nil {
					e.close()
					return nil, err
				}
				durs = append(durs, d)
			}
			lat[pname] = median(durs)
		}
		patches := uint64(0)
		if tree, ok := e.db.ChunkStoreRef().(*lsm.LSM); ok {
			patches = tree.Stats().PatchesCreated
		}
		r.addRow(fmt.Sprintf("p%d", pct),
			fmt.Sprintf("%.0f samples/s", tput),
			fmtDur(lat["1-1-1"]), fmtDur(lat["5-1-24"]),
			fmt.Sprintf("%d", patches))
		if pct > 0 {
			r.addRow(fmt.Sprintf("p%d backfill", pct),
				fmt.Sprintf("%.0f samples/s", oooTput), "-", "-", "-")
		}
		key := fmt.Sprintf("p%d", pct)
		r.Values[key+":insert"] = tput
		r.Values[key+":backfill"] = oooTput
		r.Values[key+":q111"] = lat["1-1-1"].Seconds()
		r.Values[key+":q5124"] = lat["5-1-24"].Seconds()
		r.Values[key+":patches"] = float64(patches)
		if err := e.close(); err != nil {
			return nil, err
		}
	}
	r.note("paper: insertion barely affected; short-range latency +3%%; long-range latency grows with out-of-order volume (more S3 SSTables/patches to read)")
	return r, nil
}
