package core

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/goleveldb"
	"timeunion/internal/labels"
)

func goleveldbOptionsForTest(fast, slow cloud.Store) goleveldb.Options {
	return goleveldb.Options{
		Store:               slow,
		FastStore:           fast,
		FastLevels:          2,
		MemTableSize:        4 << 10,
		L0CompactionTrigger: 3,
		BaseLevelBytes:      8 << 10,
		Multiplier:          4,
		MaxLevels:           5,
		TargetTableSize:     8 << 10,
		BlockSize:           512,
	}
}

func testOpts(dir string) Options {
	return Options{
		Dir:               dir,
		Fast:              cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
		Slow:              cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
		CacheBytes:        1 << 20,
		ChunkSamples:      8,
		SlotsPerRegion:    256,
		MemTableSize:      4 << 10,
		L0PartitionLength: 1000,
		L2PartitionLength: 4000,
		MaxL0Partitions:   2,
		PatchThreshold:    2,
		TargetTableSize:   16 << 10,
		BlockSize:         512,
	}
}

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestEndToEndSeries(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	// Two series, samples spanning many partitions so data flows to L2.
	ids := map[string]uint64{}
	for _, host := range []string{"h1", "h2"} {
		ls := labels.FromStrings("metric", "cpu", "host", host)
		id, err := db.Append(ls, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[host] = id
	}
	for ts := int64(10); ts <= 20000; ts += 10 {
		for _, id := range ids {
			if err := db.AppendFast(id, ts, float64(ts)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.NumSeries != 2 {
		t.Fatalf("NumSeries = %d", st.NumSeries)
	}
	if st.LSM.CompactionsL1L2 == 0 {
		t.Fatal("data never reached L2")
	}
	if st.SlowBytes == 0 {
		t.Fatal("no bytes on slow tier")
	}

	// Query one series over the whole span.
	res, err := db.Query(0, 20000, labels.MustEqual("host", "h1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d series", len(res))
	}
	if want := 2001; len(res[0].Samples) != want {
		t.Fatalf("got %d samples, want %d", len(res[0].Samples), want)
	}
	// Query both series by metric.
	res, err = db.Query(100, 200, labels.MustEqual("metric", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d series", len(res))
	}
	for _, s := range res {
		if len(s.Samples) != 11 {
			t.Fatalf("series %v: %d samples", s.Labels, len(s.Samples))
		}
		for _, p := range s.Samples {
			if p.V != float64(p.T) {
				t.Fatalf("bad value %v at %d", p.V, p.T)
			}
		}
	}
}

func TestQueryIncludesOpenHeadChunk(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	id, err := db.Append(labels.FromStrings("m", "x"), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AppendFast(id, 20, 2); err != nil {
		t.Fatal(err)
	}
	// No flush: samples live only in the head's open chunk.
	res, err := db.Query(0, 100, labels.MustEqual("m", "x"))
	if err != nil || len(res) != 1 || len(res[0].Samples) != 2 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}

func TestEndToEndGroups(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	gTags := labels.FromStrings("hostname", "host_0", "region", "tokyo")
	uniques := []labels.Labels{
		labels.FromStrings("metric", "usage_user"),
		labels.FromStrings("metric", "usage_system"),
		labels.FromStrings("metric", "usage_idle"),
	}
	gid, slots, err := db.AppendGroup(gTags, uniques, 0, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 12000; ts += 10 {
		vals := []float64{float64(ts), float64(ts) * 2, float64(ts) * 3}
		if err := db.AppendGroupFast(gid, slots, ts, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Select one member by its unique tag + group tag.
	res, err := db.Query(0, 12000,
		labels.MustEqual("hostname", "host_0"),
		labels.MustEqual("metric", "usage_system"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d series: %v", len(res), res)
	}
	if got := res[0].Labels.Get("metric"); got != "usage_system" {
		t.Fatalf("labels = %v", res[0].Labels)
	}
	if want := 1201; len(res[0].Samples) != want {
		t.Fatalf("got %d samples, want %d", len(res[0].Samples), want)
	}
	for _, p := range res[0].Samples {
		want := float64(p.T) * 2
		if p.T == 0 {
			want = 2
		}
		if p.V != want {
			t.Fatalf("member sample at %d = %v, want %v", p.T, p.V, want)
		}
	}

	// Selecting by group tag alone returns all members.
	res, err = db.Query(0, 12000, labels.MustEqual("region", "tokyo"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("group query returned %d members", len(res))
	}

	// Regex across members.
	res, err = db.Query(0, 12000, labels.MustMatcher(labels.MatchRegexp, "metric", "usage_(user|idle)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("regex group query returned %d members", len(res))
	}
}

func TestMixedSeriesAndGroups(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	// Same metric name exists as an individual series and a group member.
	if _, err := db.Append(labels.FromStrings("metric", "cpu", "kind", "solo"), 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.AppendGroup(
		labels.FromStrings("kind", "grouped"),
		[]labels.Labels{labels.FromStrings("metric", "cpu")},
		10, []float64{2},
	); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(0, 100, labels.MustEqual("metric", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d series, want solo + grouped", len(res))
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Append(labels.FromStrings("m", "x"), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(20); ts <= 100; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	gid, slots, err := db.AppendGroup(
		labels.FromStrings("host", "h"),
		[]labels.Labels{labels.FromStrings("m", "gm")},
		50, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	_ = gid
	_ = slots
	// Simulate a crash: close WITHOUT flushing open chunks by only closing
	// the underlying WAL (we cannot skip Close's flush, so instead reopen
	// from the same WAL dir with fresh stores — the store contents are
	// ephemeral MemStores, so everything must come back from the WAL).
	if err := db.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Drop the db without Close (leak the goroutine; acceptable in tests).

	opts2 := testOpts(dir)
	db2, err := Open(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(0, 1000, labels.MustEqual("m", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 10 {
		t.Fatalf("recovered series = %+v", res)
	}
	res, err = db2.Query(0, 1000, labels.MustEqual("m", "gm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 1 || res[0].Samples[0].V != 5 {
		t.Fatalf("recovered group = %+v", res)
	}
}

// TestSequenceRestoredAfterRecovery pins the seq-restore step in
// head.Recover: samples at or below the flushed watermark are skipped
// during replay, so after a crash the series' next sequence number must be
// raised to that watermark. Without it, appends after the first recovery
// reuse burned sequence IDs and a *second* recovery silently skips them.
func TestSequenceRestoredAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	// The stores persist across incarnations (they model cloud storage);
	// only the process state and WAL dir carry over a crash.
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	open := func() *DB {
		opts := testOpts(dir)
		opts.Fast, opts.Slow = fast, slow
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	crash := func(db *DB) {
		_ = db.store.Close()
		_ = db.wal.CrashClose()
		_ = db.head.Close()
	}

	// Incarnation 1: everything appended here is flushed, so the flush
	// marks cover the full sequence range of both streams.
	db := open()
	id, err := db.Append(labels.FromStrings("m", "seq"), 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	gid, slots, err := db.AppendGroup(
		labels.FromStrings("host", "h"),
		[]labels.Labels{labels.FromStrings("m", "gseq")},
		10, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(20); ts <= 200; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
		if err := db.AppendGroupFast(gid, slots, ts, []float64{float64(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	crash(db)

	// Incarnation 2: replay skips every flushed sample, so nothing here
	// advances the in-memory sequence counters — only the restore step
	// does. These appends must not reuse burned sequence IDs.
	db = open()
	for ts := int64(210); ts <= 300; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
		if err := db.AppendGroupFast(gid, slots, ts, []float64{float64(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	crash(db)

	// Incarnation 3: the second batch lives only in the WAL; if its records
	// carried reused sequence IDs they would be skipped as already-flushed.
	db = open()
	defer db.Close()
	for _, sel := range []string{"seq", "gseq"} {
		res, err := db.Query(0, 1000, labels.MustEqual("m", sel))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("%s: got %d series, want 1", sel, len(res))
		}
		if want := 30; len(res[0].Samples) != want {
			t.Fatalf("%s: got %d samples, want %d (second batch lost)", sel, len(res[0].Samples), want)
		}
		for _, p := range res[0].Samples {
			if p.V != float64(p.T) {
				t.Fatalf("%s: sample %d has value %v", sel, p.T, p.V)
			}
		}
	}
}

func TestRetentionEndToEnd(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 20000; ts += 10 {
		if err := db.AppendFast(id, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	parts, _, err := db.ApplyRetention(10000)
	if err != nil {
		t.Fatal(err)
	}
	if parts == 0 {
		t.Fatal("retention dropped no partitions")
	}
	// Retention is partition-granular: every partition entirely older than
	// the watermark is gone, so a query well below it finds nothing...
	res, err := db.Query(0, 4000, labels.MustEqual("m", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expired data visible: %d series", len(res))
	}
	// ...while recent data survives untouched.
	res, err = db.Query(10000, 20000, labels.MustEqual("m", "x"))
	if err != nil || len(res) != 1 {
		t.Fatalf("recent data lost: %v, %v", res, err)
	}
	if len(res[0].Samples) != 1001 {
		t.Fatalf("recent samples = %d, want 1001", len(res[0].Samples))
	}
}

func TestQueryAgainstOracleMixedWorkload(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	rnd := rand.New(rand.NewSource(5))
	type key struct {
		metric string
		host   string
	}
	oracle := map[key]map[int64]float64{}
	idByKey := map[key]uint64{}
	for ts := int64(0); ts <= 15000; ts += 25 {
		for h := 0; h < 3; h++ {
			k := key{metric: fmt.Sprintf("m%d", h%2), host: fmt.Sprintf("h%d", h)}
			v := rnd.Float64()
			if oracle[k] == nil {
				oracle[k] = map[int64]float64{}
			}
			oracle[k][ts] = v
			if id, ok := idByKey[k]; ok {
				if err := db.AppendFast(id, ts, v); err != nil {
					t.Fatal(err)
				}
			} else {
				id, err := db.Append(labels.FromStrings("metric", k.metric, "host", k.host), ts, v)
				if err != nil {
					t.Fatal(err)
				}
				idByKey[k] = id
			}
		}
	}
	// Sprinkle out-of-order overwrites.
	for i := 0; i < 50; i++ {
		for k, id := range idByKey {
			ts := int64(rnd.Intn(600)) * 25
			v := -rnd.Float64()
			oracle[k][ts] = v
			if err := db.AppendFast(id, ts, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for k := range oracle {
		res, err := db.Query(0, 20000,
			labels.MustEqual("metric", k.metric), labels.MustEqual("host", k.host))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("%v: %d series", k, len(res))
		}
		if len(res[0].Samples) != len(oracle[k]) {
			t.Fatalf("%v: %d samples, oracle %d", k, len(res[0].Samples), len(oracle[k]))
		}
		for _, p := range res[0].Samples {
			if oracle[k][p.T] != p.V {
				t.Fatalf("%v at %d: got %v, want %v", k, p.T, p.V, oracle[k][p.T])
			}
		}
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without stores succeeded")
	}
}

func TestLabelValues(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	for i := 0; i < 5; i++ {
		if _, err := db.Append(labels.FromStrings("metric", "cpu", "host", fmt.Sprintf("h%d", i%3)), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	vals := db.LabelValues("host")
	if len(vals) != 3 {
		t.Fatalf("LabelValues(host) = %v", vals)
	}
}

func TestStatsSnapshot(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	if _, err := db.Append(labels.FromStrings("m", "x"), 1, 1); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.NumSeries != 1 || st.Memory.Total() == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTULDBBaselineEndToEnd(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	store, err := NewTULDBStore(goleveldbOptionsForTest(fast, slow))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts("")
	opts.Fast = fast
	opts.Slow = slow
	opts.Store = store
	db := openTestDB(t, opts)

	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 10000; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order overwrite must still resolve newest-wins.
	if err := db.AppendFast(id, 500, -1); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(0, 10000, labels.MustEqual("m", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 1001 {
		t.Fatalf("TU-LDB query = %d series / %d samples", len(res), len(res[0].Samples))
	}
	for _, p := range res[0].Samples {
		want := float64(p.T)
		if p.T == 500 {
			want = -1
		}
		if p.V != want {
			t.Fatalf("at %d: got %v want %v", p.T, p.V, want)
		}
	}
}

func TestBackgroundMaintenance(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, testOpts(dir))
	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 30000; ts += 10 {
		if err := db.AppendFast(id, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().LSM.PartitionsDropped
	// Retain only the last 5000 time units; tick fast.
	m := db.StartMaintenance(5000, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for db.Stats().LSM.PartitionsDropped == before {
		if time.Now().After(deadline) {
			m.Stop()
			t.Fatal("maintenance never dropped partitions")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	// Old data gone.
	res, err := db.Query(0, 4000, labels.MustEqual("m", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatal("maintenance retention ineffective")
	}
}

// TestGroupOracleWithPartialRounds drives a group through partial rounds
// (missing members), member growth, and out-of-order rounds, checking every
// member's samples against a brute-force oracle.
func TestGroupOracleWithPartialRounds(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	rnd := rand.New(rand.NewSource(21))
	gTags := labels.FromStrings("host", "h0")
	oracle := map[int]map[int64]float64{} // slot -> t -> v

	// Start with 3 members; grow to 6 over time.
	uniques := []labels.Labels{}
	for i := 0; i < 6; i++ {
		uniques = append(uniques, labels.FromStrings("m", fmt.Sprintf("m%d", i)))
	}
	var gid uint64
	var slotOf []int // slot index per member index
	frontier := int64(0)
	for round := 0; round < 400; round++ {
		members := 3
		if round > 100 {
			members = 5
		}
		if round > 250 {
			members = 6
		}
		var ts int64
		if rnd.Intn(6) == 0 && frontier > 2000 {
			ts = rnd.Int63n(frontier) // out-of-order round
		} else {
			frontier += int64(10 + rnd.Intn(100))
			ts = frontier
		}
		// Random subset of the active members participates.
		var roundUniques []labels.Labels
		var roundVals []float64
		var roundMembers []int
		for m := 0; m < members; m++ {
			if rnd.Intn(5) == 0 {
				continue // member missing this round
			}
			roundUniques = append(roundUniques, uniques[m])
			roundVals = append(roundVals, rnd.Float64()*100)
			roundMembers = append(roundMembers, m)
		}
		if len(roundUniques) == 0 {
			continue
		}
		g, slots, err := db.AppendGroup(gTags, roundUniques, ts, roundVals)
		if err != nil {
			t.Fatal(err)
		}
		gid = g
		for i, m := range roundMembers {
			for len(slotOf) <= m {
				slotOf = append(slotOf, -1)
			}
			slotOf[m] = slots[i]
			if oracle[m] == nil {
				oracle[m] = map[int64]float64{}
			}
			oracle[m][ts] = roundVals[i]
		}
	}
	_ = gid
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for m, want := range oracle {
		res, err := db.Query(0, frontier+1000,
			labels.MustEqual("host", "h0"),
			labels.MustEqual("m", fmt.Sprintf("m%d", m)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("member %d: %d series", m, len(res))
		}
		if len(res[0].Samples) != len(want) {
			t.Fatalf("member %d: %d samples, oracle %d", m, len(res[0].Samples), len(want))
		}
		for _, p := range res[0].Samples {
			if want[p.T] != p.V {
				t.Fatalf("member %d at %d: got %v want %v", m, p.T, p.V, want[p.T])
			}
		}
	}
}

func TestDisableWAL(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.DisableWAL = true
	db := openTestDB(t, opts)
	if _, err := db.Append(labels.FromStrings("m", "x"), 1, 1); err != nil {
		t.Fatal(err)
	}
	if db.wal != nil {
		t.Fatal("WAL created despite DisableWAL")
	}
	if _, err := os.Stat(dir + "/wal"); !os.IsNotExist(err) {
		t.Fatal("WAL directory exists despite DisableWAL")
	}
	// PurgeWAL and retention still work as no-ops.
	if n, err := db.PurgeWAL(); err != nil || n != 0 {
		t.Fatalf("PurgeWAL = %d, %v", n, err)
	}
}
