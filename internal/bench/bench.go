// Package bench implements the experiment harness: one named experiment per
// figure/table of the paper's evaluation (§4), each regenerating the rows
// the paper reports at a configurable scale. Absolute numbers differ from
// the AWS testbed (the storage tiers are simulated); the harness preserves
// the *shapes* — who wins, by what factor, where crossovers fall.
//
// Latency accounting: real wall time would require sleeping the full
// modelled store latencies. Instead every measurement combines wall-clock
// compute time with the delta of the stores' modelled (simulated) read and
// write time, so an experiment finishes in seconds yet reports latencies in
// the simulated-time domain.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/goleveldb"
	"timeunion/internal/labels"
	"timeunion/internal/tsbs"
	"timeunion/internal/tsdb"
)

// Config scales an experiment run.
type Config struct {
	// HourMs is the logical length of one "hour" in sample-time ms.
	// 3600000 reproduces real time; tests use much smaller values.
	HourMs int64
	// Hosts is the number of TSBS DevOps hosts (101 series each).
	Hosts int
	// SampleIntervalMs between rounds (paper: 30s or 10s => HourMs/120 or
	// HourMs/360 at scale).
	SampleIntervalMs int64
	// SpanHours of data to insert.
	SpanHours int
	// Seed for deterministic workloads.
	Seed int64
	// QueriesPerPattern controls query repetitions for latency medians.
	QueriesPerPattern int
	// Parallelism is the per-query worker count handed to the TimeUnion
	// engines (core.Options.QueryConcurrency). 0 keeps the engine
	// default; 1 forces the serial path for baseline comparisons.
	Parallelism int
	// FaultProb, when positive, wraps both simulated stores in a
	// cloud.FaultStore injecting transient errors, spurious not-founds,
	// torn writes, and latency spikes at roughly this per-operation rate —
	// resilience runs that exercise the retry and recovery paths under
	// load.
	FaultProb float64
	// CompactionWorkers sets the LSM compaction executor pool size handed
	// to the TimeUnion engines (core.Options.CompactionWorkers). 0 keeps
	// the engine default; the compact experiment compares 1 (serial)
	// against this value.
	CompactionWorkers int
	// FaultSeed pins the fault schedule (0 derives it from Seed).
	FaultSeed int64
	// Verbose prints progress lines while running.
	Verbose bool

	// SLO harness knobs (the slo experiment; zero values take its
	// defaults). The run drives the HTTP server at SLOIngestRate write
	// rounds and SLOQueryRate queries per second for SLODuration, then
	// fails unless every p99 stays under its threshold.
	SLODuration   time.Duration
	SLOIngestRate int
	SLOQueryRate  int
	SLOWriteP99Ms float64
	SLOQueryP99Ms float64
}

// withDefaults fills the paper-shaped defaults at a laptop scale.
func (c Config) withDefaults() Config {
	if c.HourMs <= 0 {
		c.HourMs = 60_000 // 1 logical hour = 60s of sample time
	}
	if c.Hosts <= 0 {
		c.Hosts = 8
	}
	if c.SampleIntervalMs <= 0 {
		c.SampleIntervalMs = c.HourMs / 120 // "30 seconds" scaled
	}
	if c.SpanHours <= 0 {
		c.SpanHours = 24
	}
	if c.Seed == 0 {
		c.Seed = 2022
	}
	if c.QueriesPerPattern <= 0 {
		c.QueriesPerPattern = 3
	}
	return c
}

// Report is one experiment's regenerated table/series.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Values holds named numeric results for programmatic shape checks.
	Values map[string]float64
	// Metrics holds each engine's obs registry snapshot taken at the end of
	// its run (histograms expanded to _count/_sum/_p50/_p90/_p99/_max).
	// Only engines with an instrumented core (the TimeUnion variants)
	// appear; baselines have no registry.
	Metrics map[string]map[string]float64 `json:",omitempty"`
	// Alloc holds per-path heap allocation accounting for experiments that
	// compare read-path implementations.
	Alloc map[string]AllocStat `json:",omitempty"`
}

// AllocStat is the heap allocation cost of one measured operation.
type AllocStat struct {
	AllocsPerOp float64
	BytesPerOp  float64
}

func newReport(id, title string, header ...string) *Report {
	return &Report{ID: id, Title: title, Header: header, Values: map[string]float64{}}
}

func (r *Report) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteJSON renders the report as indented JSON, for machine consumption
// alongside the Print table (tubench -json).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// setAlloc records one measured path's allocation cost.
func (r *Report) setAlloc(path string, s AllocStat) {
	if r.Alloc == nil {
		r.Alloc = map[string]AllocStat{}
	}
	r.Alloc[path] = s
}

// measureAllocs runs fn iters times on a single OS thread and returns the
// mean heap allocations and bytes per run (testing.B ReportAllocs style,
// usable outside the testing harness).
func measureAllocs(iters int, fn func() error) (AllocStat, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return AllocStat{}, err
		}
	}
	runtime.ReadMemStats(&after)
	return AllocStat{
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}, nil
}

// setMetrics records an engine's end-of-run metrics snapshot.
func (r *Report) setMetrics(engine string, snap map[string]float64) {
	if len(snap) == 0 {
		return
	}
	if r.Metrics == nil {
		r.Metrics = map[string]map[string]float64{}
	}
	r.Metrics[engine] = snap
}

// tiers bundles the two simulated stores of one engine instance.
type tiers struct {
	fast cloud.Store
	slow cloud.Store
}

func newTiers(cfg Config) tiers {
	// TimeScale 0: account modelled latency without sleeping.
	t := tiers{
		fast: cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0)),
		slow: cloud.NewMemStore(cloud.TierObject, cloud.S3Model(0)),
	}
	if cfg.FaultProb > 0 {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		// Retryable fault classes only (no spurious not-founds, which are
		// deliberately never retried), with a RetryStore above the
		// injection so engines without their own retry wiring — the
		// baselines — survive the run and the experiments still complete.
		fc := cloud.FaultConfig{
			Seed:          seed,
			TransientProb: cfg.FaultProb,
			TornWriteProb: cfg.FaultProb / 2,
			LatencyProb:   cfg.FaultProb / 4,
			LatencySpike:  200 * time.Microsecond,
		}
		t.fast = cloud.NewRetryStore(cloud.NewFaultStore(t.fast, fc), cloud.RetryPolicy{})
		fc.Seed = seed + 1
		t.slow = cloud.NewRetryStore(cloud.NewFaultStore(t.slow, fc), cloud.RetryPolicy{})
	}
	return t
}

// simTime returns the total modelled store time so far.
func (t tiers) simTime() time.Duration {
	fs, ss := t.fast.Stats(), t.slow.Stats()
	return fs.SimReadTime + fs.SimWriteTime + ss.SimReadTime + ss.SimWriteTime
}

// measure runs fn and returns wall + modelled-store time.
func (t tiers) measure(fn func() error) (time.Duration, error) {
	before := t.simTime()
	start := time.Now()
	err := fn()
	return time.Since(start) + (t.simTime() - before), err
}

// engine abstracts the five systems of the storage-engine evaluation.
type engine interface {
	name() string
	// insertRound writes one generator round (shared timestamp across all
	// hosts' series) using the engine's fast path.
	insertRound(t int64, vals [][]float64) error
	// insertOutOfOrder writes one old sample for (host, series).
	insertOutOfOrder(host, series int, t int64, v float64) error
	flush() error
	// query runs a TSBS query, returning matched series and sample counts.
	query(q tsbs.Query) (nSeries, nSamples int, err error)
	// memory returns the accounted in-memory footprint.
	memory() int64
	// metrics returns the engine's obs registry snapshot, or nil for
	// engines without one (the baselines).
	metrics() map[string]float64
	// tiers exposes the engine's stores.
	stores() tiers
	close() error
}

// engineConfig builds engines at a common scale.
type engineConfig struct {
	cfg     Config
	hosts   []tsbs.Host
	ebsOnly bool // Figure 17: slow tier == fast tier

	// TimeUnion geometry, scaled from the paper's defaults.
	l0Len, l2Len int64
	memTable     int64
	chunkSamples int

	fastLimit      int64
	dynamic        bool
	patchThreshold int
}

func newEngineConfig(cfg Config, hosts []tsbs.Host) engineConfig {
	return engineConfig{
		cfg:          cfg,
		hosts:        hosts,
		l0Len:        cfg.HourMs / 2, // 30 minutes
		l2Len:        cfg.HourMs * 2, // 2 hours
		memTable:     256 << 10,
		chunkSamples: 32,
	}
}

// --- TimeUnion engines ---

// tuEngine is TimeUnion with individual timeseries (TU / TU-fast).
type tuEngine struct {
	db  *core.DB
	t   tiers
	ids [][]uint64 // [host][series]
	nm  string
}

func newTUEngine(ec engineConfig, name string) (*tuEngine, error) {
	t := newTiers(ec.cfg)
	var slow cloud.Store = t.slow
	if ec.ebsOnly {
		slow = t.fast
	}
	db, err := core.Open(core.Options{
		Fast:              t.fast,
		Slow:              slow,
		CacheBytes:        1 << 30,
		ChunkSamples:      ec.chunkSamples,
		SlotsPerRegion:    2048,
		SlotSize:          512,
		MemTableSize:      ec.memTable,
		L0PartitionLength: ec.l0Len,
		L2PartitionLength: ec.l2Len,
		FastLimit:         ec.fastLimit,
		DynamicSizing:     ec.dynamic,
		PatchThreshold:    ec.patchThreshold,
		BlockSize:         4096,
		QueryConcurrency:  ec.cfg.Parallelism,
		CompactionWorkers: ec.cfg.CompactionWorkers,
	})
	if err != nil {
		return nil, err
	}
	e := &tuEngine{db: db, t: t, nm: name}
	e.ids = make([][]uint64, len(ec.hosts))
	for hi, h := range ec.hosts {
		e.ids[hi] = make([]uint64, tsbs.SeriesPerHost)
		for si := range e.ids[hi] {
			id, err := db.Append(h.SeriesLabels(si), 0, 0) // registration sample at t=0
			if err != nil {
				db.Close()
				return nil, err
			}
			e.ids[hi][si] = id
		}
	}
	return e, nil
}

func (e *tuEngine) name() string { return e.nm }

func (e *tuEngine) insertRound(t int64, vals [][]float64) error {
	for hi := range vals {
		for si, v := range vals[hi] {
			if err := e.db.AppendFast(e.ids[hi][si], t, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *tuEngine) insertOutOfOrder(host, series int, t int64, v float64) error {
	return e.db.AppendFast(e.ids[host][series], t, v)
}

func (e *tuEngine) flush() error { return e.db.Flush() }

func (e *tuEngine) query(q tsbs.Query) (int, int, error) {
	res, err := e.db.Query(q.MinT, q.MaxT, q.Matchers...)
	if err != nil {
		return 0, 0, err
	}
	total := 0
	for _, s := range res {
		ts := make([]int64, len(s.Samples))
		vs := make([]float64, len(s.Samples))
		for i, p := range s.Samples {
			ts[i] = p.T
			vs[i] = p.V
		}
		tsbs.AggregateMax(ts, vs, q.MinT, q.MaxT, q.WindowMs)
		total += len(s.Samples)
	}
	return len(res), total, nil
}

func (e *tuEngine) memory() int64               { return e.db.Stats().Memory.Total() }
func (e *tuEngine) metrics() map[string]float64 { return e.db.Metrics().Snapshot() }
func (e *tuEngine) stores() tiers               { return e.t }
func (e *tuEngine) close() error                { return e.db.Close() }

// tuGroupEngine is TimeUnion with one group per host (TU-Group).
type tuGroupEngine struct {
	db    *core.DB
	t     tiers
	gids  []uint64
	slots [][]int
}

func newTUGroupEngine(ec engineConfig) (*tuGroupEngine, error) {
	t := newTiers(ec.cfg)
	var slow cloud.Store = t.slow
	if ec.ebsOnly {
		slow = t.fast
	}
	db, err := core.Open(core.Options{
		Fast:              t.fast,
		Slow:              slow,
		CacheBytes:        1 << 30,
		ChunkSamples:      ec.chunkSamples,
		SlotsPerRegion:    2048,
		SlotSize:          512,
		MemTableSize:      ec.memTable,
		L0PartitionLength: ec.l0Len,
		L2PartitionLength: ec.l2Len,
		FastLimit:         ec.fastLimit,
		DynamicSizing:     ec.dynamic,
		BlockSize:         4096,
		QueryConcurrency:  ec.cfg.Parallelism,
		CompactionWorkers: ec.cfg.CompactionWorkers,
	})
	if err != nil {
		return nil, err
	}
	e := &tuGroupEngine{db: db, t: t}
	// One group per host: shared tags = the 10 host tags; unique tags =
	// measurement+field (the paper's "timeseries from the same host form
	// a group").
	uniques := make([]labels.Labels, tsbs.SeriesPerHost)
	zeros := make([]float64, tsbs.SeriesPerHost)
	for si := range uniques {
		uniques[si] = tsbs.SeriesTags(si)
	}
	for _, h := range ec.hosts {
		gid, slots, err := db.AppendGroup(h.Tags, uniques, 0, zeros)
		if err != nil {
			db.Close()
			return nil, err
		}
		e.gids = append(e.gids, gid)
		e.slots = append(e.slots, slots)
	}
	return e, nil
}

func (e *tuGroupEngine) name() string { return "TU-Group" }

func (e *tuGroupEngine) insertRound(t int64, vals [][]float64) error {
	for hi := range vals {
		if err := e.db.AppendGroupFast(e.gids[hi], e.slots[hi], t, vals[hi]); err != nil {
			return err
		}
	}
	return nil
}

func (e *tuGroupEngine) insertOutOfOrder(host, series int, t int64, v float64) error {
	return e.db.AppendGroupFast(e.gids[host], []int{e.slots[host][series]}, t, []float64{v})
}

func (e *tuGroupEngine) flush() error { return e.db.Flush() }

func (e *tuGroupEngine) query(q tsbs.Query) (int, int, error) {
	res, err := e.db.Query(q.MinT, q.MaxT, q.Matchers...)
	if err != nil {
		return 0, 0, err
	}
	total := 0
	for _, s := range res {
		total += len(s.Samples)
	}
	return len(res), total, nil
}

func (e *tuGroupEngine) memory() int64               { return e.db.Stats().Memory.Total() }
func (e *tuGroupEngine) metrics() map[string]float64 { return e.db.Metrics().Snapshot() }
func (e *tuGroupEngine) stores() tiers               { return e.t }
func (e *tuGroupEngine) close() error                { return e.db.Close() }

// tuLdbEngine is TU-LDB: TimeUnion head over the classic leveled LSM.
type tuLdbEngine struct {
	tuEngine
}

func newTULDBEngine(ec engineConfig) (*tuLdbEngine, error) {
	t := newTiers(ec.cfg)
	var slow cloud.Store = t.slow
	if ec.ebsOnly {
		slow = t.fast
	}
	store, err := core.NewTULDBStore(goleveldb.Options{
		Store:               slow,
		FastStore:           t.fast,
		FastLevels:          2,
		MemTableSize:        ec.memTable,
		L0CompactionTrigger: 4,
		BaseLevelBytes:      1 << 20,
		Multiplier:          10,
		MaxLevels:           7,
		BlockSize:           4096,
	})
	if err != nil {
		return nil, err
	}
	db, err := core.Open(core.Options{
		Fast:             t.fast,
		Slow:             slow,
		CacheBytes:       1 << 30,
		ChunkSamples:     ec.chunkSamples,
		SlotsPerRegion:   2048,
		SlotSize:         512,
		Store:            store,
		QueryConcurrency: ec.cfg.Parallelism,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	e := &tuLdbEngine{tuEngine: tuEngine{db: db, t: t, nm: "TU-LDB"}}
	e.ids = make([][]uint64, len(ec.hosts))
	for hi, h := range ec.hosts {
		e.ids[hi] = make([]uint64, tsbs.SeriesPerHost)
		for si := range e.ids[hi] {
			id, err := db.Append(h.SeriesLabels(si), 0, 0)
			if err != nil {
				db.Close()
				return nil, err
			}
			e.ids[hi][si] = id
		}
	}
	return e, nil
}

// --- tsdb engines ---

// tsdbEngine is the Prometheus-tsdb baseline; with ldb=true, tsdb-LDB.
type tsdbEngine struct {
	db  *tsdb.DB
	ldb *goleveldb.DB
	t   tiers
	ids [][]uint64
	nm  string
}

func newTsdbEngine(ec engineConfig, ldb bool) (*tsdbEngine, error) {
	t := newTiers(ec.cfg)
	// tsdb writes its blocks to the slow tier (the Cortex deployment
	// model: block files uploaded to object storage), unless EBS-only.
	var blockStore cloud.Store = t.slow
	if ec.ebsOnly {
		blockStore = t.fast
	}
	opts := tsdb.Options{
		Store:        blockStore,
		Cache:        cloud.NewLRUCache(1 << 30),
		BlockSpan:    ec.l2Len, // 2 hours, like Prometheus
		ChunkSamples: 120,
		MergeBlocks:  4,
	}
	name := "tsdb"
	var sdb *goleveldb.DB
	if ldb {
		name = "tsdb-LDB"
		var err error
		sdb, err = goleveldb.Open(goleveldb.Options{
			Store:               blockStore,
			MemTableSize:        ec.memTable,
			L0CompactionTrigger: 4,
			BaseLevelBytes:      1 << 20,
			Multiplier:          10,
			MaxLevels:           7,
			BlockSize:           4096,
			Cache:               opts.Cache,
		})
		if err != nil {
			return nil, err
		}
		opts.SampleDB = sdb
	}
	db, err := tsdb.Open(opts)
	if err != nil {
		if sdb != nil {
			sdb.Close()
		}
		return nil, err
	}
	e := &tsdbEngine{db: db, ldb: sdb, t: t, nm: name}
	e.ids = make([][]uint64, len(ec.hosts))
	for hi, h := range ec.hosts {
		e.ids[hi] = make([]uint64, tsbs.SeriesPerHost)
		for si := range e.ids[hi] {
			id, err := db.Append(h.SeriesLabels(si), 0, 0)
			if err != nil {
				db.Flush()
				return nil, err
			}
			e.ids[hi][si] = id
		}
	}
	return e, nil
}

func (e *tsdbEngine) name() string { return e.nm }

func (e *tsdbEngine) insertRound(t int64, vals [][]float64) error {
	for hi := range vals {
		for si, v := range vals[hi] {
			if err := e.db.AppendFast(e.ids[hi][si], t, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *tsdbEngine) insertOutOfOrder(host, series int, t int64, v float64) error {
	// Prometheus tsdb rejects out-of-order data (§2.2).
	return e.db.AppendFast(e.ids[host][series], t, v)
}

func (e *tsdbEngine) flush() error { return e.db.Flush() }

func (e *tsdbEngine) query(q tsbs.Query) (int, int, error) {
	res, err := e.db.Query(q.MinT, q.MaxT, q.Matchers...)
	if err != nil {
		return 0, 0, err
	}
	total := 0
	for _, s := range res {
		total += len(s.Samples)
	}
	return len(res), total, nil
}

func (e *tsdbEngine) memory() int64 {
	m := e.db.Footprint().Total()
	if e.ldb != nil {
		m += e.ldb.MemBytes()
	}
	return m
}

func (e *tsdbEngine) metrics() map[string]float64 { return nil }

func (e *tsdbEngine) stores() tiers { return e.t }

func (e *tsdbEngine) close() error {
	if e.ldb != nil {
		defer e.ldb.Close()
	}
	return e.db.Flush()
}

// buildEngine constructs one of the five systems by name.
func buildEngine(ec engineConfig, name string) (engine, error) {
	switch name {
	case "tsdb":
		return newTsdbEngine(ec, false)
	case "tsdb-LDB":
		return newTsdbEngine(ec, true)
	case "TU", "TU-fast":
		return newTUEngine(ec, name)
	case "TU-Group":
		return newTUGroupEngine(ec)
	case "TU-LDB":
		return newTULDBEngine(ec)
	}
	return nil, fmt.Errorf("bench: unknown engine %q", name)
}

// median returns the median of a duration slice.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1000)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
