package obs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestJournalWraparound fills a small ring far past its capacity and checks
// the flight-recorder contract: only the newest capacity events survive,
// and their sequence numbers are gapless and end at LastSeq.
func TestJournalWraparound(t *testing.T) {
	const capacity, emitted = 8, 27
	j := NewJournal(capacity)
	for i := 0; i < emitted; i++ {
		j.Emit("test.op", time.Now(), nil, map[string]any{"i": i})
	}
	if got := j.LastSeq(); got != emitted {
		t.Fatalf("LastSeq = %d, want %d", got, emitted)
	}
	if got := j.Overwritten(); got != emitted-capacity {
		t.Fatalf("Overwritten = %d, want %d", got, emitted-capacity)
	}
	evs := j.Events(0, nil)
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		want := uint64(emitted - capacity + 1 + i)
		if e.Seq != want {
			t.Errorf("event %d: seq = %d, want %d (gapless oldest-first)", i, e.Seq, want)
		}
		if e.Fields["i"] != int(want-1) {
			t.Errorf("event seq %d carries fields %v, want i=%d", e.Seq, e.Fields, want-1)
		}
	}
}

// TestJournalFilters checks the since_seq cursor and kind-set filters that
// back the /api/v1/events query parameters.
func TestJournalFilters(t *testing.T) {
	j := NewJournal(64)
	for i := 0; i < 10; i++ {
		kind := "a"
		if i%2 == 1 {
			kind = "b"
		}
		j.Emit(kind, time.Now(), nil, nil)
	}
	if got := len(j.Events(4, nil)); got != 6 {
		t.Errorf("Events(since=4) returned %d, want 6", got)
	}
	bs := j.Events(0, map[string]bool{"b": true})
	if len(bs) != 5 {
		t.Fatalf("kind filter returned %d events, want 5", len(bs))
	}
	for _, e := range bs {
		if e.Kind != "b" {
			t.Errorf("kind filter leaked kind %q", e.Kind)
		}
	}
	if got := j.Events(j.LastSeq(), nil); got != nil {
		t.Errorf("Events past the newest seq returned %d events, want none", len(got))
	}
}

// TestJournalError checks error capture and the empty-omit contract.
func TestJournalError(t *testing.T) {
	j := NewJournal(4)
	j.Emit("op.ok", time.Now(), nil, nil)
	j.Emit("op.bad", time.Now(), errors.New("boom"), nil)
	evs := j.Events(0, nil)
	if evs[0].Err != "" {
		t.Errorf("success event carries err %q", evs[0].Err)
	}
	if evs[1].Err != "boom" {
		t.Errorf("failure event err = %q, want boom", evs[1].Err)
	}
}

// TestJournalNil checks that a nil journal no-ops every method, so emit
// sites never branch.
func TestJournalNil(t *testing.T) {
	var j *Journal
	j.Emit("k", time.Now(), nil, map[string]any{"x": 1})
	if j.Events(0, nil) != nil || j.LastSeq() != 0 || j.Capacity() != 0 || j.Overwritten() != 0 {
		t.Error("nil journal must report empty state")
	}
	j.RegisterMetrics(NewRegistry())
}

// TestJournalConcurrent hammers Emit and Events from many goroutines (run
// under -race by make tier1-obs) and then verifies the final state is a
// consistent gapless suffix.
func TestJournalConcurrent(t *testing.T) {
	const writers, perWriter, readers = 8, 500, 4
	j := NewJournal(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := j.Events(cursor, nil)
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq != evs[i-1].Seq+1 {
						t.Errorf("snapshot gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
				if len(evs) > 0 {
					cursor = evs[len(evs)-1].Seq
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Emit(fmt.Sprintf("writer.%d", w), time.Now(), nil, map[string]any{"i": i})
			}
		}(w)
	}
	// Stop readers once every writer has emitted, then join everyone.
	for j.LastSeq() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := j.LastSeq(); got != writers*perWriter {
		t.Fatalf("LastSeq = %d, want %d", got, writers*perWriter)
	}
	evs := j.Events(0, nil)
	if len(evs) != j.Capacity() {
		t.Fatalf("retained %d events, want full ring %d", len(evs), j.Capacity())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("final state gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != uint64(writers*perWriter) {
		t.Fatalf("newest retained seq = %d, want %d", evs[len(evs)-1].Seq, writers*perWriter)
	}
}

// TestRegisterProcessMetrics checks the build-info and uptime series land
// in the registry with the expected shapes.
func TestRegisterProcessMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	RegisterProcessMetrics(reg) // idempotent
	snap := reg.Snapshot()
	var foundBuild bool
	for k, v := range snap {
		if len(k) >= len("timeunion_build_info") && k[:len("timeunion_build_info")] == "timeunion_build_info" {
			foundBuild = true
			if v != 1 {
				t.Errorf("build_info = %g, want constant 1", v)
			}
		}
	}
	if !foundBuild {
		t.Error("timeunion_build_info not registered")
	}
	if up, ok := snap["timeunion_process_uptime_seconds"]; !ok || up < 0 {
		t.Errorf("uptime = %g, ok=%v", up, ok)
	}
}
