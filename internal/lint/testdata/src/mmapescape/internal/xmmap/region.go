// Package xmmap is the mmapescape fixture home package: deriving views
// from Region.Data() is its job, but a derived slice stored beyond the
// deriving call outlives the mapping.
package xmmap

// Region models a memory mapping; data dies at Close.
type Region struct {
	data []byte
}

// Data returns the mapped bytes, valid until Close.
func (r *Region) Data() []byte { return r.data }

var global []byte

type array struct {
	r    *Region
	view []byte
}

// slot is the accessor pattern: returning a derived view is allowed.
func (a *array) slot(off int) []byte {
	return a.r.Data()[off : off+8 : off+8]
}

func (a *array) storeField() {
	a.view = a.r.Data() // want "stored in a field"
}

func (a *array) storeViaLocal() {
	d := a.r.Data()
	a.view = d[4:8] // want "stored in a field"
	global = d      // want "package-level global"
	grown := append(d, 0)
	a.view = grown // want "stored in a field"
}

func (a *array) storeContainer(m map[int][]byte) {
	m[0] = a.r.Data() // want "stored in a container"
}

type holder struct{ b []byte }

func (a *array) storeLiteral() holder {
	return holder{b: a.r.Data()} // want "composite literal"
}

// clean uses the view locally and copies before retaining: no findings.
func (a *array) clean() []byte {
	h := a.r.Data()
	_ = h[0]
	cp := append([]byte(nil), h...)
	a.view = cp
	return cp
}
