// Package tsbs has no subsystem mapping, so registering any instrument is
// a finding until the metricname table is extended.
package tsbs

import "fix/internal/obs"

func register(reg *obs.Registry) {
	reg.Counter("timeunion_tsbs_rows_total", "", "unmapped package") // want "no subsystem entry in the metricname analyzer table"
}
