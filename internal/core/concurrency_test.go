package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"timeunion/internal/cloud"
	"timeunion/internal/labels"
)

// TestConcurrentAppendAndQuery hammers the DB with parallel writers and
// readers; run under -race this validates the locking across head, LSM,
// and index.
func TestConcurrentAppendAndQuery(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	const writers = 4
	const readers = 2
	const perWriter = 400

	ids := make([]uint64, writers)
	for w := 0; w < writers; w++ {
		id, err := db.Append(labels.FromStrings("metric", "cpu", "writer", fmt.Sprintf("w%d", w)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[w] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				if err := db.AppendFast(ids[w], int64(i)*10, float64(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 50; i++ {
				lo := rnd.Int63n(int64(perWriter) * 10)
				if _, err := db.Query(lo, lo+500, labels.MustEqual("metric", "cpu")); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every writer's samples are intact.
	for w := 0; w < writers; w++ {
		res, err := db.Query(1, int64(perWriter)*10, labels.MustEqual("writer", fmt.Sprintf("w%d", w)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || len(res[0].Samples) != perWriter {
			t.Fatalf("writer %d: %d series / %d samples", w, len(res), len(res[0].Samples))
		}
	}
}

// TestConcurrentGroupAppends exercises the group write path in parallel
// with queries.
func TestConcurrentGroupAppends(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	const groups = 3
	gids := make([]uint64, groups)
	slots := make([][]int, groups)
	uniques := []labels.Labels{
		labels.FromStrings("m", "a"), labels.FromStrings("m", "b"),
	}
	for g := 0; g < groups; g++ {
		gid, sl, err := db.AppendGroup(labels.FromStrings("host", fmt.Sprintf("h%d", g)), uniques, 0, []float64{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		gids[g], slots[g] = gid, sl
	}
	var wg sync.WaitGroup
	errs := make(chan error, groups+1)
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 300; i++ {
				if err := db.AppendGroupFast(gids[g], slots[g], int64(i)*10, []float64{float64(i), -float64(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.Query(0, 5000, labels.MustEqual("m", "a")); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(1, 10000, labels.MustEqual("m", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != groups {
		t.Fatalf("got %d member series, want %d", len(res), groups)
	}
	for _, s := range res {
		if len(s.Samples) != 300 {
			t.Fatalf("%v: %d samples", s.Labels, len(s.Samples))
		}
	}
}

// TestSlowTierFailureSurfaces opens a DB whose slow tier starts failing
// and checks that the error reaches the caller instead of being swallowed.
func TestSlowTierFailureSurfaces(t *testing.T) {
	opts := testOpts("")
	slow := &flakyStore{Store: opts.Slow, failAfterPuts: 3}
	opts.Slow = slow
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for ts := int64(10); ts <= 60000; ts += 10 {
		if err := db.AppendFast(id, ts, 1); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		if err := db.Flush(); err == nil {
			t.Fatal("slow-tier failure never surfaced")
		}
	}
}

// flakyStore wraps a cloud.Store and fails every Put after the first few.
type flakyStore struct {
	cloud.Store
	mu            sync.Mutex
	puts          int
	failAfterPuts int
}

func (f *flakyStore) Put(key string, data []byte) error {
	f.mu.Lock()
	f.puts++
	fail := f.puts > f.failAfterPuts
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected slow-tier outage")
	}
	return f.Store.Put(key, data)
}
