package obs

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1025, 10},
		{1 << 40, 40}, {(1 << 41) - 1, 40},
		{1<<62 + 1, 62}, {int64(^uint64(0) >> 1), 62},
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's contents must sit strictly below its upper bound.
	for i := 0; i < numHistBuckets-1; i++ {
		ub := BucketUpperBound(i)
		if histBucket(ub-1) > i {
			t.Errorf("bucket %d: value %d above bucket but below upper bound", i, ub-1)
		}
		if i >= 1 && histBucket(ub) != i+1 && i < 61 {
			t.Errorf("bucket %d: upper bound %d should land in bucket %d, got %d", i, ub, i+1, histBucket(ub))
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 90 fast observations at ~1us, 9 at ~1ms, 1 at ~1s.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Max != time.Second {
		t.Errorf("max = %v, want exactly 1s", s.Max)
	}
	// p50 resolves to the 1us bucket: upper bound <= 2us.
	if s.P50 > 2*time.Microsecond || s.P50 < time.Microsecond {
		t.Errorf("p50 = %v, want in (1us, 2us]", s.P50)
	}
	// Rank 90 of 100 (0-indexed) is the first 1ms observation, so p90
	// resolves to the 1ms bucket: upper bound in (1ms, 2.1ms].
	if s.P90 < time.Millisecond || s.P90 > 2100*time.Microsecond {
		t.Errorf("p90 = %v, want in [1ms, 2.1ms]", s.P90)
	}
	// Rank 99 is the 1s observation -> p99 hits the top occupied bucket
	// and reports the exact max.
	if s.P99 != s.Max {
		t.Errorf("p99 = %v, want exact max %v (top occupied bucket)", s.P99, s.Max)
	}
	if s.P99 > s.Max || s.P90 > s.P99 || s.P50 > s.P90 {
		t.Errorf("percentiles not monotonic: p50=%v p90=%v p99=%v max=%v", s.P50, s.P90, s.P99, s.Max)
	}
	wantSum := 90*time.Microsecond + 9*time.Millisecond + time.Second
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 || s.Max != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
	var nh *Histogram
	nh.Observe(time.Second) // must not panic
	if nh.Count() != 0 {
		t.Errorf("nil histogram count = %d", nh.Count())
	}
	if s := nh.Snapshot(); s.Count != 0 {
		t.Errorf("nil snapshot: %+v", s)
	}
}

func TestNilInstrumentsAndRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "", "")
	g := r.Gauge("x", "", "")
	h := r.Histogram("x", "", "")
	r.CounterFunc("x", "", "", nil)
	r.GaugeFunc("x", "", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must be no-ops")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	var sc *ShardedCounter
	if sc.Add(1, 1) != 0 || sc.Value() != 0 {
		t.Error("nil ShardedCounter must be a no-op")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("timeunion_test_total", `tier="fast"`, "help")
	b := r.Counter("timeunion_test_total", `tier="fast"`, "help")
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	c := r.Counter("timeunion_test_total", `tier="slow"`, "help")
	if a == c {
		t.Error("different labels must return distinct counters")
	}
	a.Add(2)
	c.Inc()
	snap := r.Snapshot()
	if snap[`timeunion_test_total{tier="fast"}`] != 2 {
		t.Errorf("fast = %v", snap[`timeunion_test_total{tier="fast"}`])
	}
	if snap[`timeunion_test_total{tier="slow"}`] != 1 {
		t.Errorf("slow = %v", snap[`timeunion_test_total{tier="slow"}`])
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("timeunion_conc_total", "", "")
	g := r.Gauge("timeunion_conc_gauge", "", "")
	h := r.Histogram("timeunion_conc_seconds", "", "")
	var sc ShardedCounter

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				sc.Add(id, 1)
			}
		}(uint64(w))
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = r.WritePrometheus(&strings.Builder{})
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	want := uint64(workers * perWorker)
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != int64(want) {
		t.Errorf("gauge = %d, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if sc.Value() != want {
		t.Errorf("sharded counter = %d, want %d", sc.Value(), want)
	}
	// Bucket counts must also sum to the total.
	_, cums := h.cumulativeBuckets()
	if len(cums) == 0 || cums[len(cums)-1] != want {
		t.Errorf("cumulative buckets end at %v, want %d", cums, want)
	}
}

// expositionLine matches a single sample line of the Prometheus text format.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|NaN|\+Inf|-Inf)$`)

func TestWritePrometheusGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("timeunion_a_total", "", "a counter").Add(5)
	r.Gauge("timeunion_b_bytes", `tier="fast"`, "a gauge").Set(123)
	r.Gauge("timeunion_b_bytes", `tier="slow"`, "a gauge").Set(456)
	h := r.Histogram("timeunion_c_seconds", "", "a histogram")
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Millisecond)
	r.CounterFunc("timeunion_d_total", "", "func counter", func() float64 { return 9 })
	r.GaugeFunc("timeunion_e", "", "func gauge", func() float64 { return -1.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	helps, types := 0, 0
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			helps++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("line does not match exposition grammar: %q", line)
		}
	}
	if types != 5 {
		t.Errorf("TYPE blocks = %d, want 5 (one per metric name): \n%s", types, out)
	}
	for _, want := range []string{
		"timeunion_a_total 5",
		`timeunion_b_bytes{tier="fast"} 123`,
		`timeunion_b_bytes{tier="slow"} 456`,
		`timeunion_c_seconds_bucket{le="+Inf"} 2`,
		"timeunion_c_seconds_count 2",
		"# TYPE timeunion_c_seconds histogram",
		"timeunion_d_total 9",
		"timeunion_e -1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative (non-decreasing).
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "timeunion_c_seconds_bucket") {
			var v uint64
			if _, err := fmtSscanLast(line, &v); err != nil {
				t.Fatalf("parse bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			prev = v
		}
	}
}

// fmtSscanLast parses the final whitespace-separated token of line into v.
func fmtSscanLast(line string, v *uint64) (int, error) {
	fields := strings.Fields(line)
	last := fields[len(fields)-1]
	var n uint64
	for _, ch := range last {
		if ch < '0' || ch > '9' {
			return 0, errNotInt
		}
		n = n*10 + uint64(ch-'0')
	}
	*v = n
	return 1, nil
}

var errNotInt = errSentinel("not an integer")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
