package bench

import "testing"

// TestFig13Shapes validates the end-to-end ordering of Figure 13: Cortex <
// TU (slow path) < TU-fast < TU-Group on insertion, and Cortex's memory
// above TU's.
func TestFig13Shapes(t *testing.T) {
	r, err := Fig13(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("insert: TU=%.0f TU-fast=%.0f TU-Group=%.0f Cortex=%.0f",
		r.Values["insert:TU"], r.Values["insert:TU-fast"],
		r.Values["insert:TU-Group"], r.Values["insert:Cortex"])
	if r.Values["insert:TU-fast"] <= r.Values["insert:TU"] {
		t.Fatal("TU-fast not above TU (paper: 6.6x)")
	}
	if r.Values["insert:TU-Group"] <= r.Values["insert:TU-fast"] {
		t.Fatal("TU-Group not above TU-fast (paper: 2.9x)")
	}
	if r.Values["insert:TU"] <= r.Values["insert:Cortex"] {
		t.Fatal("TU not above Cortex (paper: +26.6%)")
	}
	if r.Values["mem:Cortex"] <= r.Values["mem:TU"] {
		t.Fatal("Cortex memory not above TU (paper: +96.8%)")
	}
	// Per-query overhead: Cortex pays whole-index loads from the object
	// store on every query (the mechanism behind the paper's 30.4x gap on
	// 5-1-24). Assert it on the short-range 5-8-1 pattern, where that fixed
	// cost dominates, and on modelled store time, which is deterministic:
	// at this tiny scale the long-range comparison is marginal — TU's
	// slow-tier read count wobbles with background-compaction state — so
	// its ordering only emerges at paper scale.
	t.Logf("q:5-8-1 store time: TU=%.4fs Cortex=%.4fs",
		r.Values["qsim:5-8-1:TU"], r.Values["qsim:5-8-1:Cortex"])
	if r.Values["qsim:5-8-1:Cortex"] <= 2*r.Values["qsim:5-8-1:TU"] {
		t.Fatalf("Cortex 5-8-1 store time (%.4fs) not well above TU (%.4fs)",
			r.Values["qsim:5-8-1:Cortex"], r.Values["qsim:5-8-1:TU"])
	}
}
