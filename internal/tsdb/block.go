package tsdb

import (
	"fmt"
	"sort"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
	"timeunion/internal/labels"
)

// block is one persisted, self-contained partition: an index object and
// (unless chunks live in the sample LSM) a chunks object.
type block struct {
	id         int
	minT, maxT int64
	indexKey   string
	chunksKey  string
	indexSize  int64
}

// chunkRef locates one sealed chunk.
type chunkRef struct {
	minT, maxT int64
	// inline chunks: offset/length in the block's chunks object.
	off, length uint64
	// tsdb-LDB chunks: key in the sample LSM.
	ldbKey []byte
}

// blockSeries is one series' entry in a block index.
type blockSeries struct {
	id     uint64
	lbls   labels.Labels
	chunks []chunkRef
}

// blockIndex is a fully decoded block index. Querying a block requires
// loading this into memory (§2.2: "metadata is commonly loaded into memory
// for accelerating querying, which incurs non-negligible memory usage").
type blockIndex struct {
	series   []blockSeries
	postings map[string]map[string][]int // name -> value -> series positions
	rawBytes int64
}

// flushHeadLocked seals every open chunk and writes the head as a new
// self-contained block, then resets the per-block sample buffers.
func (db *DB) flushHeadLocked() error {
	if !db.headSet {
		return nil
	}
	var chunksBuf encoding.Buf
	var indexBuf encoding.Buf

	type seriesEntry struct {
		s    *memSeries
		refs []chunkRef
	}
	var entries []seriesEntry
	for _, s := range db.series {
		if s.chunk != nil && s.chunk.NumSamples() > 0 {
			s.sealed = append(s.sealed, append([]byte(nil), s.chunk.Bytes()...))
			s.chunk = nil
		}
		if len(s.sealed) == 0 {
			continue
		}
		e := seriesEntry{s: s}
		for ci, payload := range s.sealed {
			samples, err := chunkenc.DecodeXORSamples(payload)
			if err != nil {
				return fmt.Errorf("tsdb: flush: %w", err)
			}
			ref := chunkRef{minT: samples[0].T, maxT: samples[len(samples)-1].T}
			if db.opts.SampleDB != nil {
				// tsdb-LDB: a unique, ULID-like key per chunk (§2.4:
				// "for each compressed chunk, we generate a ULID as the
				// key, and insert the key-value pair into LevelDB").
				key := make([]byte, 0, 24)
				key = append(key, fmt.Sprintf("c%06d-%012x-%04d", db.nextBlk, s.id, ci)...)
				if err := db.opts.SampleDB.Put(key, payload); err != nil {
					return err
				}
				ref.ldbKey = key
			} else {
				ref.off = uint64(chunksBuf.Len())
				ref.length = uint64(len(payload))
				chunksBuf.PutBytes(payload)
			}
			e.refs = append(e.refs, ref)
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil
	}

	// Serialize the index: series (id, labels, chunk refs) then postings
	// rebuilt from the head's nested hash tables.
	indexBuf.PutUvarint(uint64(len(entries)))
	for _, e := range entries {
		indexBuf.PutUvarint(e.s.id)
		indexBuf.B = e.s.lbls.Bytes(indexBuf.B)
		indexBuf.PutUvarint(uint64(len(e.refs)))
		for _, r := range e.refs {
			indexBuf.PutVarint(r.minT)
			indexBuf.PutVarint(r.maxT)
			if db.opts.SampleDB != nil {
				indexBuf.PutByte(1)
				indexBuf.PutUvarintBytes(r.ldbKey)
			} else {
				indexBuf.PutByte(0)
				indexBuf.PutUvarint(r.off)
				indexBuf.PutUvarint(r.length)
			}
		}
	}

	blk := &block{
		id:        db.nextBlk,
		minT:      db.headMinT,
		maxT:      db.headMaxT,
		indexKey:  fmt.Sprintf("tsdbblk/%06d/index", db.nextBlk),
		chunksKey: fmt.Sprintf("tsdbblk/%06d/chunks", db.nextBlk),
	}
	db.nextBlk++
	if err := db.opts.Store.Put(blk.indexKey, indexBuf.Get()); err != nil {
		return fmt.Errorf("tsdb: write block index: %w", err)
	}
	blk.indexSize = int64(indexBuf.Len())
	if db.opts.SampleDB == nil {
		if err := db.opts.Store.Put(blk.chunksKey, chunksBuf.Get()); err != nil {
			return fmt.Errorf("tsdb: write block chunks: %w", err)
		}
	}
	db.blocks = append(db.blocks, blk)

	// Reset the head: series objects and the index stay (they are the
	// linear-in-series memory of Figure 3a); sample buffers clear.
	for _, s := range db.series {
		s.sealed = nil
		s.count = 0
	}
	db.headSet = false

	if db.opts.MergeBlocks > 0 && len(db.blocks) >= db.opts.MergeBlocks {
		return db.mergeBlocksLocked()
	}
	return nil
}

// mergeBlocksLocked merges the oldest run of small (not-yet-merged) blocks
// into one larger block (§2.2: "on-disk blocks will be merged into larger
// blocks when the number of them reaches a specific threshold"). Already-
// merged blocks (span > BlockSpan) are left alone, like Prometheus's
// leveled block compaction.
func (db *DB) mergeBlocksLocked() error {
	// Select the run of small blocks to merge. A freshly flushed head
	// block spans just over one BlockSpan (the flush triggers when the
	// span reaches it), so "small" means anything under two spans;
	// already-merged blocks span MergeBlocks of them and are left alone.
	var small []*block
	for _, blk := range db.blocks {
		if blk.maxT-blk.minT < 2*db.opts.BlockSpan {
			small = append(small, blk)
		}
	}
	if len(small) < db.opts.MergeBlocks {
		return nil
	}
	inputs := small[:db.opts.MergeBlocks]

	var chunksBuf encoding.Buf
	var indexBuf encoding.Buf
	merged := map[uint64]*blockSeries{}
	var order []uint64
	minT, maxT := int64(0), int64(0)
	for i, blk := range inputs {
		idx, err := db.loadIndexLocked(blk)
		if err != nil {
			return err
		}
		if i == 0 || blk.minT < minT {
			minT = blk.minT
		}
		if i == 0 || blk.maxT > maxT {
			maxT = blk.maxT
		}
		for _, bs := range idx.series {
			m := merged[bs.id]
			if m == nil {
				m = &blockSeries{id: bs.id, lbls: bs.lbls}
				merged[bs.id] = m
				order = append(order, bs.id)
			}
			for _, ref := range bs.chunks {
				newRef := ref
				if ref.ldbKey == nil {
					payload, err := db.opts.Store.GetRange(blk.chunksKey, int64(ref.off), int64(ref.length))
					if err != nil {
						return fmt.Errorf("tsdb: merge read: %w", err)
					}
					newRef.off = uint64(chunksBuf.Len())
					newRef.length = uint64(len(payload))
					chunksBuf.PutBytes(payload)
				}
				m.chunks = append(m.chunks, newRef)
			}
		}
	}
	indexBuf.PutUvarint(uint64(len(order)))
	for _, id := range order {
		m := merged[id]
		indexBuf.PutUvarint(m.id)
		indexBuf.B = m.lbls.Bytes(indexBuf.B)
		indexBuf.PutUvarint(uint64(len(m.chunks)))
		for _, r := range m.chunks {
			indexBuf.PutVarint(r.minT)
			indexBuf.PutVarint(r.maxT)
			if r.ldbKey != nil {
				indexBuf.PutByte(1)
				indexBuf.PutUvarintBytes(r.ldbKey)
			} else {
				indexBuf.PutByte(0)
				indexBuf.PutUvarint(r.off)
				indexBuf.PutUvarint(r.length)
			}
		}
	}
	blk := &block{
		id:        db.nextBlk,
		minT:      minT,
		maxT:      maxT,
		indexKey:  fmt.Sprintf("tsdbblk/%06d/index", db.nextBlk),
		chunksKey: fmt.Sprintf("tsdbblk/%06d/chunks", db.nextBlk),
	}
	db.nextBlk++
	if err := db.opts.Store.Put(blk.indexKey, indexBuf.Get()); err != nil {
		return err
	}
	blk.indexSize = int64(indexBuf.Len())
	if chunksBuf.Len() > 0 {
		if err := db.opts.Store.Put(blk.chunksKey, chunksBuf.Get()); err != nil {
			return err
		}
	}
	dead := map[*block]bool{}
	for _, old := range inputs {
		dead[old] = true
		_ = db.opts.Store.Delete(old.indexKey)
		_ = db.opts.Store.Delete(old.chunksKey)
		if db.opts.Cache != nil {
			db.opts.Cache.Invalidate(old.indexKey)
		}
	}
	keep := db.blocks[:0]
	for _, b := range db.blocks {
		if !dead[b] {
			keep = append(keep, b)
		}
	}
	db.blocks = append([]*block{blk}, keep...)
	sort.Slice(db.blocks, func(i, j int) bool { return db.blocks[i].minT < db.blocks[j].minT })
	return nil
}

// loadIndexLocked fetches and decodes a block index, loading the whole
// object into memory (the metadata cost Figure 3b attributes 34% of tsdb's
// memory to, and the reason Cortex's long-range queries stall).
func (db *DB) loadIndexLocked(blk *block) (*blockIndex, error) {
	var raw []byte
	if db.opts.Cache != nil {
		if d, ok := db.opts.Cache.Get(blk.indexKey); ok {
			raw = d
		}
	}
	if raw == nil {
		var err error
		raw, err = db.opts.Store.Get(blk.indexKey)
		if err != nil {
			return nil, fmt.Errorf("tsdb: load block index: %w", err)
		}
		if db.opts.Cache != nil {
			db.opts.Cache.Put(blk.indexKey, raw)
		}
		db.loadedIndexBytes += int64(len(raw))
	}
	d := encoding.NewDecbuf(raw)
	idx := &blockIndex{
		postings: map[string]map[string][]int{},
		rawBytes: int64(len(raw)),
	}
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		var bs blockSeries
		bs.id = d.Uvarint()
		ls, rest, err := labels.DecodeLabels(d.B)
		if err != nil {
			return nil, fmt.Errorf("tsdb: corrupt block index: %w", err)
		}
		d.B = rest
		bs.lbls = ls
		nc := d.Uvarint()
		for c := uint64(0); c < nc; c++ {
			var r chunkRef
			r.minT = d.Varint()
			r.maxT = d.Varint()
			if d.Byte() == 1 {
				r.ldbKey = append([]byte(nil), d.UvarintBytes()...)
			} else {
				r.off = d.Uvarint()
				r.length = d.Uvarint()
			}
			bs.chunks = append(bs.chunks, r)
		}
		pos := len(idx.series)
		idx.series = append(idx.series, bs)
		for _, l := range ls {
			vals := idx.postings[l.Name]
			if vals == nil {
				vals = map[string][]int{}
				idx.postings[l.Name] = vals
			}
			vals[l.Value] = append(vals[l.Value], pos)
		}
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("tsdb: corrupt block index: %w", d.Err())
	}
	return idx, nil
}
