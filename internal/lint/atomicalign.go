package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicAlign enforces 32-bit atomic safety (DESIGN.md §4.7 hot-path
// budget): a plain int64/uint64 struct field whose address is passed to
// the sync/atomic 64-bit functions must
//
//  1. sit at an 8-byte-aligned offset under 32-bit layout rules (GOARCH
//     386), where the compiler only guarantees 4-byte alignment for
//     64-bit words — a misaligned atomic faults on arm and 386; and
//  2. be accessed exclusively through sync/atomic: one plain load mixed
//     in silently tears under the race detector's radar.
//
// The typed atomics (atomic.Int64, obs.Counter/Gauge) are immune on both
// counts — they self-align and unexport the word — and are the preferred
// fix for either finding.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "sync/atomic-accessed int64/uint64 struct fields must be 8-byte aligned on 32-bit and never mixed with plain access",
	Run:  runAtomicAlign,
}

// atomic64Funcs are the sync/atomic functions taking *int64/*uint64.
func isAtomic64Func(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			return rest == "Int64" || rest == "Uint64"
		}
	}
	return false
}

func runAtomicAlign(pass *Pass) {
	// Pass 1: find struct fields whose address feeds a 64-bit sync/atomic
	// call, remembering which selector expressions were those sanctioned
	// accesses.
	atomicFields := map[*types.Var]ast.Node{}  // field -> one atomic call site
	sanctioned := map[*ast.SelectorExpr]bool{} // &x.f operands of atomic calls
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := calleeFromPkg(pass.Info, call, "sync/atomic")
		if !ok || !isAtomic64Func(name) || len(call.Args) == 0 {
			return true
		}
		unary, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok {
			return true
		}
		sel, ok := unary.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field := selection.Obj().(*types.Var)
		sanctioned[sel] = true
		if _, seen := atomicFields[field]; !seen {
			atomicFields[field] = call
		}
		return true
	})
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: check 32-bit layout of every struct declaring such a field.
	sizes32 := types.SizesFor("gc", "386")
	pass.Inspect(func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		obj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
		if obj == nil {
			return true
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return true
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		for i, f := range fields {
			if _, isAtomic := atomicFields[f]; !isAtomic {
				continue
			}
			if offsets[i]%8 != 0 {
				pass.Reportf(f.Pos(), "field %s.%s is used with 64-bit sync/atomic but sits at offset %d under 32-bit layout; move it to the front of the struct, pad to 8 bytes, or switch to atomic.%s", obj.Name(), f.Name(), offsets[i], typedAtomicFor(f.Type()))
			}
		}
		return true
	})

	// Pass 3: every other access to an atomic field is a mixed plain
	// access.
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field := selection.Obj().(*types.Var)
		if _, isAtomic := atomicFields[field]; !isAtomic {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere in this package; use the atomic API here too (or atomic.%s)", field.Name(), typedAtomicFor(field.Type()))
		return true
	})
}

func typedAtomicFor(t types.Type) string {
	if basic, ok := types.Unalias(t).(*types.Basic); ok && basic.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}
