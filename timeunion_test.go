package timeunion_test

import (
	"path/filepath"
	"testing"

	"timeunion"
)

// TestPublicAPI exercises the package-level facade end to end: open on
// directory-backed tiers, ingest via both paths, group ingestion, query,
// reopen with recovery.
func TestPublicAPI(t *testing.T) {
	dir := t.TempDir()
	fast, err := timeunion.NewDirBlockStore(filepath.Join(dir, "fast"))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := timeunion.NewDirObjectStore(filepath.Join(dir, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := timeunion.Open(timeunion.Options{
		Dir:  filepath.Join(dir, "local"),
		Fast: fast,
		Slow: slow,
	})
	if err != nil {
		t.Fatal(err)
	}

	id, err := db.Append(timeunion.LabelsFromStrings("metric", "cpu", "host", "h1"), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(2000); ts <= 10000; ts += 1000 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	gid, slots, err := db.AppendGroup(
		timeunion.LabelsFromStrings("host", "h2"),
		[]timeunion.Labels{timeunion.LabelsFromStrings("metric", "mem")},
		1000, []float64{5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AppendGroupFast(gid, slots, 2000, []float64{6}); err != nil {
		t.Fatal(err)
	}

	re, err := timeunion.Regexp("metric", "c.u")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(0, 20000, re)
	if err != nil || len(res) != 1 || len(res[0].Samples) != 10 {
		t.Fatalf("regex query = %+v, %v", res, err)
	}
	res, err = db.Query(0, 20000, timeunion.Equal("metric", "mem"), timeunion.NotEqual("host", "h1"))
	if err != nil || len(res) != 1 || len(res[0].Samples) != 2 {
		t.Fatalf("group query = %+v, %v", res, err)
	}
	if st := db.Stats(); st.NumSeries != 1 || st.NumGroups != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery through the public facade.
	db2, err := timeunion.Open(timeunion.Options{
		Dir:  filepath.Join(dir, "local"),
		Fast: fast,
		Slow: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err = db2.Query(0, 20000, timeunion.Equal("metric", "cpu"))
	if err != nil || len(res) != 1 || len(res[0].Samples) != 10 {
		t.Fatalf("recovered query = %+v, %v", res, err)
	}
}

func TestMemStores(t *testing.T) {
	db, err := timeunion.Open(timeunion.Options{
		Fast: timeunion.NewMemBlockStore(),
		Slow: timeunion.NewMemObjectStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Append(timeunion.LabelsFromStrings("m", "x"), 1, 1); err != nil {
		t.Fatal(err)
	}
}
