package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
)

// newReplicaPair opens a writer and a replica on shared in-memory tiers
// and serves the replica over HTTP.
func newReplicaPair(t *testing.T) (*core.DB, *core.DB, *Client) {
	t.Helper()
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	db, err := core.Open(core.Options{
		Fast:              fast,
		Slow:              slow,
		ChunkSamples:      8,
		SlotsPerRegion:    256,
		MemTableSize:      8 << 10,
		L0PartitionLength: 1000,
		L2PartitionLength: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rep, err := core.OpenReplica(core.Options{
		Fast:                   fast,
		Slow:                   slow,
		ReplicaRefreshInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	srv := httptest.NewServer(NewServer(&TimeUnionBackend{DB: rep}))
	t.Cleanup(srv.Close)
	return db, rep, NewClient(srv.URL)
}

// TestReplicaMutationsForbiddenOverHTTP: every write endpoint against a
// replica-backed server must come back 403 Forbidden (a routing mistake,
// not a server fault), while queries keep working.
func TestReplicaMutationsForbiddenOverHTTP(t *testing.T) {
	db, rep, client := newReplicaPair(t)
	id, err := db.Append(labels.FromStrings("m", "x"), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Refresh(); err != nil {
		t.Fatal(err)
	}

	mutations := []struct {
		name string
		call func() error
	}{
		{"write", func() error {
			_, err := client.Write(WriteRequest{Timeseries: []WriteSeries{
				{Labels: map[string]string{"m": "y"}, Samples: []Sample{{T: 1, V: 1}}},
			}})
			return err
		}},
		{"write_fast", func() error {
			return client.WriteFast(FastWriteRequest{Entries: []FastWriteEntry{
				{ID: id, Samples: []Sample{{T: 200, V: 8}}},
			}})
		}},
		{"write_group", func() error {
			_, err := client.WriteGroup(GroupWriteRequest{
				GroupTags:  map[string]string{"g": "G"},
				UniqueTags: []map[string]string{{"s": "0"}},
				Times:      []int64{1},
				Values:     [][]float64{{1}},
			})
			return err
		}},
	}
	for _, m := range mutations {
		err := m.call()
		if err == nil {
			t.Fatalf("%s against a replica succeeded", m.name)
		}
		if !strings.Contains(err.Error(), "403") {
			t.Errorf("%s against a replica: %v, want a 403", m.name, err)
		}
	}

	q, err := client.Query(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "m", Value: "x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 1 || len(q.Series[0].Samples) != 1 || q.Series[0].Samples[0].V != 7 {
		t.Fatalf("replica query after rejected writes: %+v", q)
	}
}

// countingBackend wraps a Backend and counts queries, for observing the
// fan-out's rotation.
type countingBackend struct {
	Backend
	queries atomic.Int64
}

func (c *countingBackend) Query(mint, maxt int64, matchers ...*labels.Matcher) ([]QuerySeries, error) {
	c.queries.Add(1)
	return c.Backend.Query(mint, maxt, matchers...)
}

func TestFanoutRoundRobin(t *testing.T) {
	_, db := newTUServer(t)
	if _, err := db.Append(labels.FromStrings("m", "rr"), 100, 1); err != nil {
		t.Fatal(err)
	}

	backends := make([]*countingBackend, 3)
	clients := make([]*Client, 3)
	for i := range backends {
		backends[i] = &countingBackend{Backend: &TimeUnionBackend{DB: db}}
		srv := httptest.NewServer(NewServer(backends[i]))
		t.Cleanup(srv.Close)
		clients[i] = NewClient(srv.URL)
	}
	fan := NewFanout(clients...)

	const rounds = 9
	for i := 0; i < rounds; i++ {
		if _, err := fan.Query(QueryRequest{
			MinT: 0, MaxT: 1000,
			Matchers: []MatcherSpec{{Type: "=", Name: "m", Value: "rr"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range backends {
		if got := b.queries.Load(); got != rounds/3 {
			t.Errorf("backend %d served %d queries, want %d (round robin)", i, got, rounds/3)
		}
	}
	if f := fan.Failovers(); f != 0 {
		t.Errorf("healthy fan-out recorded %d failovers", f)
	}
}

func TestFanoutFailover(t *testing.T) {
	healthy, db := newTUServer(t)
	if _, err := db.Append(labels.FromStrings("m", "fo"), 100, 1); err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(dead.Close)

	fan := NewFanout(NewClient(dead.URL), healthy)
	req := QueryRequest{MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "m", Value: "fo"}}}
	for i := 0; i < 4; i++ {
		q, err := fan.Query(req)
		if err != nil {
			t.Fatalf("query %d with one dead replica: %v", i, err)
		}
		if len(q.Series) != 1 {
			t.Fatalf("query %d: %+v", i, q)
		}
		var streamed int
		if err := fan.QueryStream(req, func(QuerySeries) error { streamed++; return nil }); err != nil {
			t.Fatalf("stream %d with one dead replica: %v", i, err)
		}
		if streamed != 1 {
			t.Fatalf("stream %d delivered %d series", i, streamed)
		}
	}
	if fan.Failovers() == 0 {
		t.Error("no failovers recorded despite a dead replica")
	}

	// Every replica dead: the final error names the fleet size.
	allDead := NewFanout(NewClient(dead.URL), NewClient(dead.URL))
	if _, err := allDead.Query(req); err == nil || !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Errorf("all-dead fan-out error = %v", err)
	}
}

// midStreamBackend streams one series, then dies — the failure mode where
// retrying on another replica would duplicate the delivered series.
type midStreamBackend struct {
	Backend
}

type midStreamCursor struct{ sent bool }

func (c *midStreamCursor) Next() (QuerySeries, bool, error) {
	if c.sent {
		return QuerySeries{}, false, errors.New("backend lost mid-stream")
	}
	c.sent = true
	return QuerySeries{Labels: map[string]string{"m": "partial"},
		Samples: []Sample{{T: 1, V: 1}}}, true, nil
}

func (b *midStreamBackend) QueryStream(ctx context.Context, mint, maxt int64, matchers ...*labels.Matcher) (SeriesCursor, error) {
	return &midStreamCursor{}, nil
}

func TestFanoutNoRetryMidStream(t *testing.T) {
	flaky := httptest.NewServer(NewServer(&midStreamBackend{}))
	t.Cleanup(flaky.Close)
	healthy, db := newTUServer(t)
	if _, err := db.Append(labels.FromStrings("m", "ms"), 100, 1); err != nil {
		t.Fatal(err)
	}

	fan := NewFanout(NewClient(flaky.URL), healthy)
	var delivered int
	err := fan.QueryStream(QueryRequest{MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "m", Value: "ms"}}},
		func(QuerySeries) error { delivered++; return nil })
	if err == nil {
		t.Fatal("mid-stream failure was silently retried (risking duplicated series)")
	}
	if delivered != 1 {
		t.Fatalf("delivered %d series before the mid-stream failure, want 1", delivered)
	}
	if fan.Failovers() != 0 {
		t.Fatalf("mid-stream failure counted as a failover (%d)", fan.Failovers())
	}
}
