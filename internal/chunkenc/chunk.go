// Package chunkenc implements the compressed sample chunks of TimeUnion
// (paper §2.2, §3.1): Gorilla delta-of-delta timestamp compression and XOR
// floating-point compression for individual timeseries, plus the group
// variants — a shared timestamp chunk and per-member value chunks whose XOR
// stream is extended with one control bit per slot to support NULL values
// for missing/new members.
package chunkenc

import (
	"errors"
	"fmt"
	"math"

	"timeunion/internal/encoding"
)

// Encoding identifies the physical encoding of a chunk.
type Encoding byte

const (
	// EncNone is an invalid encoding.
	EncNone Encoding = iota
	// EncXOR is an individual-series chunk: delta-delta timestamps
	// interleaved with XOR-compressed values.
	EncXOR
	// EncGroupTime is a group's shared timestamp column.
	EncGroupTime
	// EncGroupValues is one group member's value column with NULL support.
	EncGroupValues
)

func (e Encoding) String() string {
	switch e {
	case EncXOR:
		return "XOR"
	case EncGroupTime:
		return "GroupTime"
	case EncGroupValues:
		return "GroupValues"
	}
	return "none"
}

// ErrChunkFull is returned when appending to a chunk at capacity.
var ErrChunkFull = errors.New("chunkenc: chunk full")

// DefaultChunkSamples is the number of samples batched per in-memory chunk
// before it is flushed to the time-partitioned LSM-tree. The paper uses 32
// (§3.2): small chunks cap memory usage at the cost of compression ratio.
const DefaultChunkSamples = 32

// Chunk is a read view over an encoded chunk.
type Chunk interface {
	// Encoding returns the chunk's physical encoding.
	Encoding() Encoding
	// Bytes returns the encoded chunk payload (excluding the encoding byte).
	Bytes() []byte
	// NumSamples returns the number of appended samples (slots for group
	// value chunks, including NULLs).
	NumSamples() int
}

// sampleCountLen is the size of the BE16 sample-count chunk header.
const sampleCountLen = 2

// --- XOR chunk (individual timeseries) ---

// XORChunk holds timestamp/value pairs for one timeseries.
type XORChunk struct {
	w *encoding.BitWriter

	numSamples int
	minT, maxT int64

	// appender state
	t        int64
	v        float64
	tDelta   int64
	leading  uint8
	trailing uint8
}

// NewXORChunk returns an empty chunk ready for appending.
func NewXORChunk() *XORChunk {
	return NewXORChunkInto(make([]byte, 0, 128))
}

// NewXORChunkInto returns an empty chunk that appends into buf (which must
// have zero length). The head passes a memory-mapped slot here so in-flight
// compressed samples live in swappable mmap space (paper §3.2, Figure 9).
func NewXORChunkInto(buf []byte) *XORChunk {
	c := &XORChunk{w: encoding.NewBitWriter(buf)}
	c.w.WriteBits(0, 16) // sample count placeholder
	c.leading = 0xff
	return c
}

// Encoding implements Chunk.
func (c *XORChunk) Encoding() Encoding { return EncXOR }

// NumSamples implements Chunk.
func (c *XORChunk) NumSamples() int { return c.numSamples }

// MinTime returns the first appended timestamp.
func (c *XORChunk) MinTime() int64 { return c.minT }

// MaxTime returns the last appended timestamp.
func (c *XORChunk) MaxTime() int64 { return c.maxT }

// Bytes implements Chunk. The returned slice aliases internal storage and
// is invalidated by further appends. It performs no writes, so concurrent
// readers are safe once appends are externally synchronized.
func (c *XORChunk) Bytes() []byte {
	return c.w.Bytes()
}

// setCount maintains the sample-count header (kept current on every append
// so Bytes never mutates).
func (c *XORChunk) setCount() {
	b := c.w.Bytes()
	b[0] = byte(c.numSamples >> 8)
	b[1] = byte(c.numSamples)
}

// Append adds a sample. Timestamps must be strictly increasing within a
// chunk; out-of-order samples are handled upstream (§3.1 case 4).
func (c *XORChunk) Append(t int64, v float64) error {
	switch c.numSamples {
	case 0:
		c.w.WriteBits(uint64(t), 64)
		c.w.WriteBits(math.Float64bits(v), 64)
		c.minT = t
	case 1:
		delta := t - c.t
		if delta < 0 {
			return fmt.Errorf("chunkenc: out-of-order append t=%d after %d", t, c.t)
		}
		writeVarbitInt(c.w, delta)
		c.writeXOR(v)
		c.tDelta = delta
	default:
		delta := t - c.t
		if delta < 0 {
			return fmt.Errorf("chunkenc: out-of-order append t=%d after %d", t, c.t)
		}
		writeVarbitInt(c.w, delta-c.tDelta)
		c.writeXOR(v)
		c.tDelta = delta
	}
	c.t, c.v = t, v
	c.maxT = t
	c.numSamples++
	c.setCount()
	return nil
}

func (c *XORChunk) writeXOR(v float64) {
	c.leading, c.trailing = writeXORValue(c.w, c.v, v, c.leading, c.trailing)
}

// Iterator returns a fresh sample iterator over the chunk contents.
func (c *XORChunk) Iterator() *XORIterator {
	return NewXORIterator(c.Bytes())
}

// XORIterator decodes an EncXOR payload.
type XORIterator struct {
	r        encoding.BitReader // by value: iterator and reader share one allocation
	numTotal int
	numRead  int
	t        int64
	v        float64
	tDelta   int64
	leading  uint8
	trailing uint8
	done     bool // a Next/Seek returned false; the iterator stays exhausted
	err      error
}

// NewXORIterator returns an iterator over an encoded XOR chunk payload.
func NewXORIterator(b []byte) *XORIterator {
	it := &XORIterator{}
	it.reset(b)
	return it
}

// reset re-points the iterator at payload b, reusing the embedded reader.
func (it *XORIterator) reset(b []byte) {
	*it = XORIterator{leading: 0xff}
	if len(b) < sampleCountLen {
		it.err = encoding.ErrShortBuffer
		return
	}
	it.r.Reset(b[sampleCountLen:])
	it.numTotal = int(b[0])<<8 | int(b[1])
}

// Next advances to the next sample.
func (it *XORIterator) Next() bool {
	if it.err != nil || it.numRead >= it.numTotal {
		it.done = true
		return false
	}
	switch it.numRead {
	case 0:
		it.t = int64(it.r.ReadBits(64))
		it.v = math.Float64frombits(it.r.ReadBits(64))
	case 1:
		it.tDelta = readVarbitInt(&it.r)
		it.t += it.tDelta
		it.readXOR()
	default:
		it.tDelta += readVarbitInt(&it.r)
		it.t += it.tDelta
		it.readXOR()
	}
	if err := it.r.Err(); err != nil {
		it.err = err
		return false
	}
	it.numRead++
	return true
}

func (it *XORIterator) readXOR() {
	it.v, it.leading, it.trailing = readXORValue(&it.r, it.v, it.leading, it.trailing)
}

// At returns the current sample.
func (it *XORIterator) At() (int64, float64) { return it.t, it.v }

// Err returns the first decoding error.
func (it *XORIterator) Err() error { return it.err }

// --- shared varbit helpers ---

// writeVarbitInt writes a signed integer with the Gorilla delta-of-delta
// bucket scheme: 0 | 10+7bit | 110+9bit | 1110+12bit | 1111+64bit.
func writeVarbitInt(w *encoding.BitWriter, v int64) {
	switch {
	case v == 0:
		w.WriteBit(false)
	case -63 <= v && v <= 64:
		w.WriteBits(0b10, 2)
		w.WriteBits(uint64(v)&0x7f, 7)
	case -255 <= v && v <= 256:
		w.WriteBits(0b110, 3)
		w.WriteBits(uint64(v)&0x1ff, 9)
	case -2047 <= v && v <= 2048:
		w.WriteBits(0b1110, 4)
		w.WriteBits(uint64(v)&0xfff, 12)
	default:
		w.WriteBits(0b1111, 4)
		w.WriteBits(uint64(v), 64)
	}
}

func readVarbitInt(r *encoding.BitReader) int64 {
	var prefix uint8
	for i := 0; i < 4; i++ {
		if !r.ReadBit() {
			break
		}
		prefix++
	}
	var nbits int
	switch prefix {
	case 0:
		return 0
	case 1:
		nbits = 7
	case 2:
		nbits = 9
	case 3:
		nbits = 12
	case 4:
		return int64(r.ReadBits(64))
	}
	v := int64(r.ReadBits(nbits))
	if v > (1 << (nbits - 1)) { // sign extension: value range is (-2^(n-1))+1 .. 2^(n-1)
		v -= 1 << nbits
	}
	return v
}

// writeXORValue encodes v XOR prev with Gorilla leading/trailing windows and
// returns the updated window state.
func writeXORValue(w *encoding.BitWriter, prev, v float64, leading, trailing uint8) (uint8, uint8) {
	delta := math.Float64bits(prev) ^ math.Float64bits(v)
	if delta == 0 {
		w.WriteBit(false)
		return leading, trailing
	}
	w.WriteBit(true)
	newLeading := uint8(leadingZeros64(delta))
	newTrailing := uint8(trailingZeros64(delta))
	if newLeading >= 32 {
		newLeading = 31 // cap to fit 5 bits
	}
	if leading != 0xff && newLeading >= leading && newTrailing >= trailing {
		// Reuse the previous window.
		w.WriteBit(false)
		w.WriteBits(delta>>trailing, 64-int(leading)-int(trailing))
		return leading, trailing
	}
	w.WriteBit(true)
	w.WriteBits(uint64(newLeading), 5)
	sigbits := 64 - int(newLeading) - int(newTrailing)
	// 64 significant bits cannot be stored in 6 bits; encode as 0 (never
	// occurs with 0 meaningful bits since delta != 0).
	w.WriteBits(uint64(sigbits&0x3f), 6)
	w.WriteBits(delta>>newTrailing, sigbits)
	return newLeading, newTrailing
}

func readXORValue(r *encoding.BitReader, prev float64, leading, trailing uint8) (float64, uint8, uint8) {
	if !r.ReadBit() {
		return prev, leading, trailing
	}
	if !r.ReadBit() {
		delta := r.ReadBits(64-int(leading)-int(trailing)) << trailing
		return math.Float64frombits(math.Float64bits(prev) ^ delta), leading, trailing
	}
	newLeading := uint8(r.ReadBits(5))
	sigbits := int(r.ReadBits(6))
	if sigbits == 0 {
		sigbits = 64
	}
	newTrailing := uint8(64 - int(newLeading) - sigbits)
	delta := r.ReadBits(sigbits) << newTrailing
	return math.Float64frombits(math.Float64bits(prev) ^ delta), newLeading, newTrailing
}

func leadingZeros64(v uint64) int {
	n := 0
	for v&(1<<63) == 0 && n < 64 {
		v <<= 1
		n++
	}
	return n
}

func trailingZeros64(v uint64) int {
	if v == 0 {
		return 64
	}
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}
