// IoT fleet: sensors deliver readings late and out of order (buffered
// uplinks), and old data expires under a retention policy. Demonstrates the
// time-partitioned LSM-tree's out-of-order handling (stale partitions and
// L2 patches, paper §3.3) and partition-granular retention.
//
//	go run ./examples/iot-fleet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
)

func main() {
	db, err := core.Open(core.Options{
		Fast:              cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0)),
		Slow:              cloud.NewMemStore(cloud.TierObject, cloud.S3Model(0)),
		L0PartitionLength: 30 * 60 * 1000, // 30 minutes
		L2PartitionLength: 2 * 60 * 60 * 1000,
		MemTableSize:      64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rnd := rand.New(rand.NewSource(7))
	const sensors = 20
	ids := make([]uint64, sensors)
	for i := range ids {
		ids[i], err = db.Append(labels.FromStrings(
			"device", fmt.Sprintf("sensor-%02d", i),
			"site", fmt.Sprintf("plant-%d", i%3),
			"metric", "temperature",
		), 0, 20)
		if err != nil {
			log.Fatal(err)
		}
	}

	// 12 hours of minutely readings... but 10% of them arrive hours late.
	const hour = 3_600_000
	var late []struct {
		id uint64
		t  int64
		v  float64
	}
	for t := int64(60_000); t <= 12*hour; t += 60_000 {
		for i, id := range ids {
			v := 20 + 5*rnd.Float64() + float64(i)
			if rnd.Intn(10) == 0 && t > 2*hour {
				late = append(late, struct {
					id uint64
					t  int64
					v  float64
				}{id, t, v})
				continue
			}
			if err := db.AppendFast(id, t, v); err != nil {
				log.Fatal(err)
			}
		}
	}
	// The buffered uplink finally delivers the late readings, far out of
	// order. The tree routes them into their (possibly slow-tier) time
	// partitions as patches instead of rewriting S3-resident SSTables.
	for _, l := range late {
		if err := db.AppendFast(l.id, l.t, l.v); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	if tree, ok := db.ChunkStoreRef().(*lsm.LSM); ok {
		st := tree.Stats()
		fmt.Printf("late readings: %d   patches created: %d   patch merges: %d\n",
			len(late), st.PatchesCreated, st.PatchMerges)
	}

	// Every reading is queryable despite the disorder.
	res, err := db.Query(0, 12*hour, labels.MustEqual("device", "sensor-00"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor-00 has %d readings over 12h\n", len(res[0].Samples))

	// Retain only the last 4 hours: whole expired partitions drop, and
	// sensor memory objects whose data fully expired are purged.
	parts, objs, err := db.ApplyRetention(8 * hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retention: dropped %d partitions, purged %d memory objects\n", parts, objs)
	res, err = db.Query(0, 8*hour-1, labels.MustEqual("device", "sensor-00"))
	if err != nil {
		log.Fatal(err)
	}
	old := 0
	if len(res) > 0 {
		old = len(res[0].Samples)
	}
	fmt.Printf("readings older than the watermark still visible (partial partitions): %d\n", old)
}
