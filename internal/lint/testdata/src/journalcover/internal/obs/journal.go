// Package obs mirrors the real journal's Emit surface.
package obs

import "time"

type Journal struct{ n int }

func (j *Journal) Emit(kind string, start time.Time, err error, fields map[string]any) {
	if j == nil {
		return
	}
	j.n++
}
