package lint

import (
	"go/ast"
)

// LockOrder enforces the head's lock hierarchy (DESIGN.md §4.5):
// catalog → stripe → series/group object, always in that order, so purge
// (catalog + stripe write locks) cannot deadlock against creation or
// appends. The analyzer walks each function in internal/head linearly,
// tracks which lock classes are held (a deferred Unlock keeps its lock
// held to function end), and flags any acquisition of a
// higher-in-the-hierarchy class while a lower one is held — e.g. taking
// the catalog lock while a stripe is locked.
//
// The analysis is intra-procedural and identifies locks by the declared
// type behind the `.mu` selector (catalog, stripe, MemSeries, MemGroup),
// which is exactly how §4.5 states the hierarchy.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "internal/head lock acquisitions must follow the catalog → stripe → object hierarchy",
	Run:  runLockOrder,
}

// lockLevels orders the head's lock classes; lower acquires first.
var lockLevels = map[string]int{
	"catalog":   0,
	"stripe":    1,
	"MemSeries": 2,
	"MemGroup":  2,
}

var levelNames = [...]string{"catalog", "stripe", "series/group object"}

func runLockOrder(pass *Pass) {
	if !pass.InScope("internal/head") {
		return
	}
	pass.Inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		checkLockBody(pass, fd.Body)
		return false
	})
}

type heldLock struct {
	level int
	owner string // type name, for the message
}

// checkLockBody analyzes one function body. A function literal is its own
// scope — it runs at some later time with its own lock state — so it is
// analyzed independently rather than folded into the enclosing walk (the
// WAL replay callbacks in recover.go lock series objects under deferred
// unlocks; that must not leak into the replay loop's stripe locking).
func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	deferred := map[*ast.CallExpr]bool{}
	var held []heldLock

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkLockBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			owner, method, ok := lockCall(pass, n)
			if !ok {
				return true
			}
			level, known := lockLevels[owner]
			if !known {
				return true
			}
			switch method {
			case "Lock", "RLock":
				for _, h := range held {
					if h.level > level {
						pass.Reportf(n.Pos(), "%s lock (%s) acquired while the %s lock (%s) is held; §4.5 order is catalog → stripe → series/group", levelNames[level], owner, levelNames[h.level], h.owner)
					}
				}
				held = append(held, heldLock{level: level, owner: owner})
			case "Unlock", "RUnlock":
				if deferred[n] {
					return true // deferred unlock: lock stays held to function end
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].level == level {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
}

// lockCall matches expressions of the shape <expr>.mu.<method>() where
// method is a mutex operation, returning the named type of <expr> and the
// method.
func lockCall(pass *Pass, call *ast.CallExpr) (owner, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	mu, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel || mu.Sel.Name != "mu" {
		return "", "", false
	}
	named := derefNamed(pass.Info.TypeOf(mu.X))
	if named == nil {
		return "", "", false
	}
	return named.Obj().Name(), method, true
}
