package bench

import (
	"fmt"
	"sort"
)

// Experiment is a runnable reproduction of one paper figure/table.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// Experiments indexes every reproduction by figure/table ID.
var Experiments = []Experiment{
	{"fig1", "Cloud storage comparison", Fig1},
	{"fig3", "Resource usage of Prometheus tsdb", Fig3},
	{"fig4", "tsdb with LevelDB as storage", Fig4},
	{"fig13", "End-to-end evaluation vs Cortex", Fig13},
	{"fig14", "Storage-engine evaluation (DevOps)", Fig14},
	{"fig15", "Big DevOps timeseries", Fig15},
	{"fig16", "Memory usage monitoring", Fig16},
	{"fig17", "Evaluation with only EBS", Fig17},
	{"fig18a", "Different EBS usage constraints", Fig18a},
	{"fig18b", "Different amounts of out-of-order data", Fig18b},
	{"fig19", "Dynamic size control", Fig19},
	{"tab3", "Index and data size", Table3},
	{"iter", "Streaming iterator read path (narrow range)", IterNarrowRange},
	{"alloc", "Zero-allocation read path (before/after)", Alloc},
	{"abl-chunk", "Ablation: in-memory chunk size", AblChunkSize},
	{"abl-patch", "Ablation: L2 patch threshold", AblPatchThreshold},
	{"abl-onelevel", "Ablation: one slow level vs leveled LSM", AblOneLevelSlow},
	{"compact", "Serial vs parallel compaction throughput", CompactParallel},
	{"slo", "Sustained-load SLO harness", SLO},
	{"replica", "Shared-storage read replicas", Replica},
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
