package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"timeunion/internal/labels"
)

// replicaOpts strips the writer-only options: a replica shares the
// writer's stores and has no local directory.
func replicaOpts(w Options) Options {
	return Options{
		Fast:                   w.Fast,
		Slow:                   w.Slow,
		CacheBytes:             w.CacheBytes,
		ChunkSamples:           w.ChunkSamples,
		SlotsPerRegion:         w.SlotsPerRegion,
		BlockSize:              w.BlockSize,
		ReplicaRefreshInterval: -1, // tests drive Refresh explicitly
	}
}

func openTestReplica(t *testing.T, opts Options) *DB {
	t.Helper()
	rep, err := OpenReplica(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}

// TestReplicaErrReadOnlyMatrix exercises every mutating entry point
// against a replica: each must fail with the typed ErrReadOnly and leave
// the shared state untouched.
func TestReplicaErrReadOnlyMatrix(t *testing.T) {
	opts := testOpts("")
	db := openTestDB(t, opts)
	if _, err := db.Append(labels.FromStrings("m", "x"), 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	rep := openTestReplica(t, replicaOpts(opts))

	ls := labels.FromStrings("m", "y")
	checks := []struct {
		name string
		call func() error
	}{
		{"Append", func() error { _, err := rep.Append(ls, 20, 1); return err }},
		{"AppendFast", func() error { return rep.AppendFast(1, 20, 1) }},
		{"AppendGroup", func() error {
			_, _, err := rep.AppendGroup(ls, []labels.Labels{labels.FromStrings("s", "0")}, 20, []float64{1})
			return err
		}},
		{"AppendGroupFast", func() error { return rep.AppendGroupFast(1, []int{0}, 20, []float64{1}) }},
		{"Flush", func() error { return rep.Flush() }},
		{"Sync", func() error { return rep.Sync() }},
		{"ApplyRetention", func() error { _, _, err := rep.ApplyRetention(1 << 40); return err }},
		{"PurgeWAL", func() error { _, err := rep.PurgeWAL(); return err }},
	}
	for _, c := range checks {
		if err := c.call(); !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s on replica: err=%v, want ErrReadOnly", c.name, err)
		}
	}
	// The replica still answers queries after the rejected mutations.
	res, err := rep.Query(0, 1<<40, labels.MustEqual("m", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 1 {
		t.Fatalf("replica query after rejections: %+v", res)
	}
}

func TestRefreshOnWriterErrors(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	if _, err := db.Refresh(); err == nil {
		t.Fatal("Refresh on a writer DB should error")
	}
}

// TestWriterReplicaIdentityFuzz drives a seeded random workload —
// individual series and groups, slow and fast paths, multiple flush
// cycles — and after every writer Flush + replica Refresh requires the
// two databases to answer the same queries with byte-identical results
// (after a flush the writer has no head-only samples, so the shared
// storage is the entire truth).
func TestWriterReplicaIdentityFuzz(t *testing.T) {
	opts := testOpts("")
	db := openTestDB(t, opts)
	rep := openTestReplica(t, replicaOpts(opts))
	rnd := rand.New(rand.NewSource(20260807))

	const nSeries = 8
	const nGroups = 3
	ids := make([]uint64, 0, nSeries)
	for i := 0; i < nSeries; i++ {
		id, err := db.Append(labels.FromStrings("m", fmt.Sprintf("s%d", i), "kind", "single"), 0, rnd.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	gids := make([]uint64, 0, nGroups)
	groupSlots := make([][]int, 0, nGroups)
	for g := 0; g < nGroups; g++ {
		members := 2 + rnd.Intn(3)
		uniques := make([]labels.Labels, members)
		vals := make([]float64, members)
		for m := range uniques {
			uniques[m] = labels.FromStrings("member", fmt.Sprintf("m%d", m))
			vals[m] = rnd.Float64()
		}
		gid, slots, err := db.AppendGroup(
			labels.FromStrings("g", fmt.Sprintf("g%d", g), "kind", "group"), uniques, 0, vals)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
		groupSlots = append(groupSlots, slots)
	}

	next := make(map[uint64]int64)
	for round := 0; round < 6; round++ {
		for op := 0; op < 400; op++ {
			if rnd.Intn(4) > 0 {
				id := ids[rnd.Intn(len(ids))]
				next[id] += int64(1 + rnd.Intn(40))
				if err := db.AppendFast(id, next[id], rnd.NormFloat64()); err != nil {
					t.Fatal(err)
				}
			} else {
				gi := rnd.Intn(len(gids))
				gid := gids[gi]
				next[gid] += int64(1 + rnd.Intn(40))
				vals := make([]float64, len(groupSlots[gi]))
				for i := range vals {
					vals[i] = rnd.NormFloat64()
				}
				if err := db.AppendGroupFast(gid, groupSlots[gi], next[gid], vals); err != nil {
					t.Fatal(err)
				}
			}
			// A new series appearing mid-stream must reach the replica via
			// the next catalog publish.
			if op == 200 && round%2 == 0 {
				id, err := db.Append(labels.FromStrings("m", fmt.Sprintf("late%d", round), "kind", "single"),
					int64(rnd.Intn(1000)), rnd.Float64())
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := rep.Refresh(); err != nil {
			t.Fatal(err)
		}

		selectors := [][]*labels.Matcher{
			{labels.MustEqual("kind", "single")},
			{labels.MustEqual("kind", "group")},
			{labels.MustEqual("m", fmt.Sprintf("s%d", rnd.Intn(nSeries)))},
			{labels.MustEqual("member", "m1")},
		}
		for si, sel := range selectors {
			lo := int64(rnd.Intn(2000))
			hi := lo + int64(rnd.Intn(10000))
			want, err := db.Query(lo, hi, sel...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.Query(lo, hi, sel...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d selector %d [%d,%d]: writer and replica diverge:\nwriter: %d series %s\nreplica: %d series %s",
					round, si, lo, hi, len(want), summarize(want), len(got), summarize(got))
			}
		}
	}
}

func summarize(res []Series) string {
	out := ""
	for _, s := range res {
		out += fmt.Sprintf("\n  %v: %d samples", s.Labels, len(s.Samples))
	}
	return out
}

// TestReplicaBackgroundRefresh covers the polling loop end to end: a
// writer flush becomes visible on the replica without any explicit
// Refresh call.
func TestReplicaBackgroundRefresh(t *testing.T) {
	opts := testOpts("")
	db := openTestDB(t, opts)
	ropts := replicaOpts(opts)
	ropts.ReplicaRefreshInterval = 2 * time.Millisecond
	rep := openTestReplica(t, ropts)

	if _, err := db.Append(labels.FromStrings("m", "bg"), 100, 42); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := rep.Query(0, 1<<40, labels.MustEqual("m", "bg"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 1 && len(res[0].Samples) == 1 && res[0].Samples[0].V == 42 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never observed the flush (last result: %+v)", res)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaSeesWriterShutdownFlush: a writer that never calls Flush
// explicitly (all LSM flushes via memtable pressure or Close) must still
// leave behind a catalog replicas can resolve its series through — the
// close-time publish is the last line of defense.
func TestReplicaSeesWriterShutdownFlush(t *testing.T) {
	opts := testOpts("")
	db := openTestDB(t, opts)
	rep := openTestReplica(t, replicaOpts(opts))

	if _, err := db.Append(labels.FromStrings("m", "shutdown"), 50, 9); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Refresh(); err != nil {
		t.Fatal(err)
	}
	res, err := rep.Query(0, 1000, labels.MustEqual("m", "shutdown"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 1 || res[0].Samples[0].V != 9 {
		t.Fatalf("replica after writer shutdown: %+v", res)
	}
}

// TestCatalogRoundTrip pins the catalog wire format: encode/decode is an
// identity, and a torn (bit-flipped) record is rejected.
func TestCatalogRoundTrip(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	if _, err := db.Append(labels.FromStrings("m", "a", "x", "1"), 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.AppendGroup(labels.FromStrings("g", "G"),
		[]labels.Labels{labels.FromStrings("s", "0"), labels.FromStrings("s", "1")}, 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	defs := db.head.CatalogSnapshot()
	data := encodeCatalog(defs)
	back, err := decodeCatalog(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(defs) {
		t.Fatalf("roundtrip: %d defs in, %d out", len(defs), len(back))
	}
	// Deterministic encoding: a second snapshot encodes identically.
	if string(encodeCatalog(db.head.CatalogSnapshot())) != string(data) {
		t.Fatal("catalog encoding is not deterministic")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := decodeCatalog(corrupt); err == nil {
		t.Fatal("decode accepted a corrupted catalog")
	}
}

// TestReplicaCatalogPruneRace: the writer deleting catalog version v−1
// between the replica's List and Get must be absorbed by a re-list.
func TestReplicaCatalogPruneRace(t *testing.T) {
	opts := testOpts("")
	db := openTestDB(t, opts)
	if _, err := db.Append(labels.FromStrings("m", "v1"), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	rep := openTestReplica(t, replicaOpts(opts))

	// Simulate the prune landing between List and Get: delete the newest
	// catalog version after the replica last saw it, publish two newer
	// ones, and delete the middle one — the replica's next refresh lists a
	// mix of live and missing keys regardless of interleaving and must
	// settle on the newest live version.
	if _, err := db.Append(labels.FromStrings("m", "v2"), 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(labels.FromStrings("m", "v3"), 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Refresh(); err != nil {
		t.Fatalf("refresh across pruned catalog versions: %v", err)
	}
	for _, m := range []string{"v1", "v2", "v3"} {
		res, err := rep.Query(0, 10, labels.MustEqual("m", m))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("series %s not visible on replica after refresh", m)
		}
	}
}
