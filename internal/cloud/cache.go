package cloud

import (
	"container/list"
	"sync"
)

// LRUCache is a byte-capacity-bounded LRU of data segments fetched from the
// slow store during querying (paper §4.1: "we equip a 1GB in-memory LRU
// cache to cache the data segments fetched from S3").
type LRUCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewLRUCache creates a cache bounded to capacity bytes. A capacity of 0
// disables caching (all lookups miss).
func NewLRUCache(capacity int64) *LRUCache {
	return &LRUCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached segment, if present.
func (c *LRUCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*cacheEntry).data, true
	}
	c.misses++
	return nil, false
}

// Put inserts a segment, evicting LRU entries to stay within capacity.
// Segments larger than the whole capacity are not cached.
func (c *LRUCache) Put(key string, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.used += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.used += int64(len(data))
	}
	for c.used > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.used -= int64(len(ent.data))
		delete(c.items, ent.key)
		c.ll.Remove(back)
	}
}

// Invalidate drops a key (after the underlying object is deleted or
// replaced by compaction).
func (c *LRUCache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.used -= int64(len(ent.data))
		delete(c.items, ent.key)
		c.ll.Remove(e)
	}
}

// UsedBytes returns the current cached volume.
func (c *LRUCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// HitRate returns hits, misses since creation.
func (c *LRUCache) HitRate() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
