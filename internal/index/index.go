// Package index implements TimeUnion's single global in-memory inverted
// index (paper §3.2). Unlike Prometheus tsdb, which builds one index per
// time partition and keeps every partition's index in memory, TimeUnion
// maintains exactly one index for the lifetime of the database: tag pairs
// are stored in a double-array trie (compact, mmap-backed, prefix
// searchable), and each trie value points at a postings list of series and
// group IDs.
package index

import (
	"fmt"
	"sort"
	"sync"

	"timeunion/internal/labels"
	"timeunion/internal/trie"
)

// Sep joins a tag name and value into a single trie key. 0xff cannot occur
// in UTF-8 text, so names and values never collide across the separator.
const Sep = 0xff

// GroupIDFlag marks group IDs in the shared 64-bit ID space: postings lists
// store both individual series IDs and group IDs, distinguished by the top
// bit (paper §3.1: "the group ID is utilized as the postings ID").
const GroupIDFlag uint64 = 1 << 63

// IsGroupID reports whether id addresses a group.
func IsGroupID(id uint64) bool { return id&GroupIDFlag != 0 }

// Options configures the index.
type Options struct {
	// Dir holds the trie's mmap region files; empty means heap-backed.
	Dir string
	// SlotsPerRegion is passed to the trie arrays (0 = 1<<20).
	SlotsPerRegion int
}

// Index is the global inverted index. Safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	trie     *trie.Trie
	postings []postingsList // trie value -> postings
	all      postingsList   // every indexed ID
	numPairs int            // live (tag pair, id) entries, for accounting
}

type postingsList struct {
	ids []uint64 // sorted
}

func (p *postingsList) add(id uint64) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i < len(p.ids) && p.ids[i] == id {
		return
	}
	p.ids = append(p.ids, 0)
	copy(p.ids[i+1:], p.ids[i:])
	p.ids[i] = id
}

func (p *postingsList) remove(id uint64) bool {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i >= len(p.ids) || p.ids[i] != id {
		return false
	}
	p.ids = append(p.ids[:i], p.ids[i+1:]...)
	return true
}

// New creates an empty index.
func New(opts Options) (*Index, error) {
	tr, err := trie.New(trie.Options{Dir: opts.Dir, SlotsPerRegion: opts.SlotsPerRegion})
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	return &Index{trie: tr}, nil
}

// Close releases the trie's mapped regions.
func (ix *Index) Close() error { return ix.trie.Close() }

func tagKey(name, value string) []byte {
	k := make([]byte, 0, len(name)+1+len(value))
	k = append(k, name...)
	k = append(k, Sep)
	k = append(k, value...)
	return k
}

// Add indexes id under every tag pair in ls.
func (ix *Index) Add(id uint64, ls labels.Labels) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, l := range ls {
		key := tagKey(l.Name, l.Value)
		pid, ok := ix.trie.Get(key)
		if !ok {
			pid = int32(len(ix.postings))
			ix.postings = append(ix.postings, postingsList{})
			if _, _, err := ix.trie.Insert(key, pid); err != nil {
				return fmt.Errorf("index: add tag %s: %w", l.Name, err)
			}
		}
		before := len(ix.postings[pid].ids)
		ix.postings[pid].add(id)
		if len(ix.postings[pid].ids) > before {
			ix.numPairs++
		}
	}
	ix.all.add(id)
	return nil
}

// Remove drops id from the postings of every tag pair in ls (data
// retention, paper §3.3: purge memory objects of expired timeseries). Trie
// keys are kept; empty postings lists cost nothing to queries.
func (ix *Index) Remove(id uint64, ls labels.Labels) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, l := range ls {
		if pid, ok := ix.trie.Get(tagKey(l.Name, l.Value)); ok {
			if ix.postings[pid].remove(id) {
				ix.numPairs--
			}
		}
	}
	ix.all.remove(id)
}

// Postings returns the sorted IDs indexed under an exact tag pair.
func (ix *Index) Postings(name, value string) []uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pid, ok := ix.trie.Get(tagKey(name, value))
	if !ok {
		return nil
	}
	return append([]uint64(nil), ix.postings[pid].ids...)
}

// LabelValues returns all values recorded for a tag name with non-empty
// postings, via a prefix scan of the trie.
func (ix *Index) LabelValues(name string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	prefix := append([]byte(name), Sep)
	var out []string
	ix.trie.IteratePrefix(prefix, func(key []byte, pid int32) bool {
		if len(ix.postings[pid].ids) > 0 {
			out = append(out, string(key[len(prefix):]))
		}
		return true
	})
	return out
}

// Select evaluates tag selectors and returns the matching IDs, sorted.
// Exact matchers use a single trie lookup; regex matchers union the
// postings of every matching value of that tag name (prefix scan, paper
// §3.4). Negative matchers subtract from the running result; a query with
// only negative matchers starts from the full ID universe.
func (ix *Index) Select(matchers ...*labels.Matcher) ([]uint64, error) {
	if len(matchers) == 0 {
		return nil, fmt.Errorf("index: select needs at least one matcher")
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var result []uint64
	started := false
	// Positive matchers first: cheapest way to bound the candidate set.
	for _, m := range matchers {
		if m.Type == labels.MatchNotEqual || m.Type == labels.MatchNotRegexp {
			continue
		}
		ids := ix.matchLocked(m)
		if started {
			result = intersect(result, ids)
		} else {
			result = ids
			started = true
		}
		if len(result) == 0 {
			return nil, nil
		}
	}
	if !started {
		result = append([]uint64(nil), ix.all.ids...)
	}
	for _, m := range matchers {
		if m.Type != labels.MatchNotEqual && m.Type != labels.MatchNotRegexp {
			continue
		}
		// A negative matcher excludes IDs whose tag value matches the
		// positive form of the matcher.
		inverse, err := labels.NewMatcher(invert(m.Type), m.Name, m.Value)
		if err != nil {
			return nil, err
		}
		result = subtract(result, ix.matchLocked(inverse))
		if len(result) == 0 {
			return nil, nil
		}
	}
	return result, nil
}

func invert(t labels.MatchType) labels.MatchType {
	if t == labels.MatchNotEqual {
		return labels.MatchEqual
	}
	return labels.MatchRegexp
}

func (ix *Index) matchLocked(m *labels.Matcher) []uint64 {
	if m.Type == labels.MatchEqual {
		if pid, ok := ix.trie.Get(tagKey(m.Name, m.Value)); ok {
			// Copy: the result may be returned to the caller or reused
			// across later postings mutations.
			return append([]uint64(nil), ix.postings[pid].ids...)
		}
		return nil
	}
	// Regex: enumerate the tag name's values by trie prefix scan.
	prefix := append([]byte(m.Name), Sep)
	var lists [][]uint64
	ix.trie.IteratePrefix(prefix, func(key []byte, pid int32) bool {
		if m.Matches(string(key[len(prefix):])) && len(ix.postings[pid].ids) > 0 {
			lists = append(lists, ix.postings[pid].ids)
		}
		return true
	})
	return union(lists)
}

func intersect(a, b []uint64) []uint64 {
	// a or b may alias internal postings storage; never write in place.
	out := make([]uint64, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func subtract(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

func union(lists [][]uint64) []uint64 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]uint64(nil), lists[0]...)
	}
	var out []uint64
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Dedup in place.
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Stats reports the index's memory accounting, used by the Figure 3 / 16 /
// Table 3 experiments.
type Stats struct {
	NumTagPairs  int   // live (tag pair, id) posting entries
	NumTagKeys   int   // distinct tag pairs in the trie
	NumIDs       int   // distinct indexed IDs
	TrieBytes    int64 // touched bytes of the mmap-backed trie
	PostingBytes int64 // heap postings size (8 B per entry)
}

// SizeBytes returns the total accounted index size.
func (s Stats) SizeBytes() int64 { return s.TrieBytes + s.PostingBytes }

// Stats returns current accounting counters.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return Stats{
		NumTagPairs:  ix.numPairs,
		NumTagKeys:   ix.trie.Len(),
		NumIDs:       len(ix.all.ids),
		TrieBytes:    ix.trie.UsedBytes(),
		PostingBytes: int64(ix.numPairs) * 8,
	}
}
