package cloud

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTransientClassifier(t *testing.T) {
	te := &TransientError{Op: "get", Key: "k"}
	if !IsTransient(te) {
		t.Fatal("TransientError not classified transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", te)) {
		t.Fatal("wrapped TransientError not classified transient")
	}
	if IsTransient(&ErrNotFound{Key: "k"}) {
		t.Fatal("ErrNotFound classified transient")
	}
	if IsTransient(ErrStoreKilled) {
		t.Fatal("ErrStoreKilled classified transient — retries would spin on a dead store")
	}
	if IsTransient(nil) {
		t.Fatal("nil classified transient")
	}
}

func TestRetryPolicy(t *testing.T) {
	p := RetryPolicy{Attempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}

	// Transient failures retry until success.
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return &TransientError{Op: "get", Key: "k"}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}

	// Attempts bound the retries; the last error comes back.
	calls = 0
	err = p.Do(func() error {
		calls++
		return &TransientError{Op: "get", Key: "k"}
	})
	if !IsTransient(err) || calls != 4 {
		t.Fatalf("err=%v calls=%d, want transient after 4 attempts", err, calls)
	}

	// Non-transient errors return immediately.
	calls = 0
	sentinel := errors.New("permanent")
	err = p.Do(func() error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate permanent error", err, calls)
	}
}

func TestFaultStoreDeterminism(t *testing.T) {
	run := func() FaultCounts {
		fs := NewFaultStore(NewMemStore(TierBlock, LatencyModel{}), FaultConfig{
			Seed:          42,
			TransientProb: 0.2,
			NotFoundProb:  0.2,
			TornWriteProb: 0.2,
		})
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("k%d", i)
			_ = fs.Put(key, []byte("0123456789"))
			_, _ = fs.Get(key)
			_, _ = fs.GetRange(key, 0, 4)
		}
		return fs.Injected()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different schedules: %+v vs %+v", a, b)
	}
	if a.Transient == 0 || a.NotFound == 0 || a.TornWrite == 0 {
		t.Fatalf("fault classes not all exercised: %+v", a)
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	inner := NewMemStore(TierBlock, LatencyModel{})
	fs := NewFaultStore(inner, FaultConfig{Seed: 7, TornWriteProb: 1})
	data := []byte("0123456789abcdef")
	err := fs.Put("k", data)
	if !IsTransient(err) {
		t.Fatalf("torn Put err = %v, want transient", err)
	}
	// The tear is visible in the underlying store: a partial object exists
	// under the real key.
	got, err := inner.Get("k")
	if err != nil {
		t.Fatalf("inner.Get after tear: %v", err)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn write stored %d bytes, want a strict prefix of %d", len(got), len(data))
	}
	if string(got) != string(data[:len(got)]) {
		t.Fatalf("torn write stored %q, not a prefix of %q", got, data)
	}
}

func TestFaultStoreNotFoundBlip(t *testing.T) {
	inner := NewMemStore(TierBlock, LatencyModel{})
	if err := inner.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner, FaultConfig{Seed: 1, NotFoundProb: 1})
	if _, err := fs.Get("k"); !IsNotFound(err) {
		t.Fatalf("Get err = %v, want spurious not-found", err)
	}
	fs.SetEnabled(false)
	if v, err := fs.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("disabled Get = %q, %v", v, err)
	}
}

func TestFaultStoreDisabledPassThrough(t *testing.T) {
	inner := NewMemStore(TierBlock, LatencyModel{})
	fs := NewFaultStore(inner, FaultConfig{Seed: 1, TransientProb: 1, NotFoundProb: 1, TornWriteProb: 1})
	fs.SetEnabled(false)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := fs.Put(key, []byte("data")); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if c := fs.Injected(); c != (FaultCounts{}) {
		t.Fatalf("disabled store injected faults: %+v", c)
	}
	if fs.TotalBytes() != inner.TotalBytes() {
		t.Fatal("TotalBytes not delegated")
	}
}

func TestFaultStoreKill(t *testing.T) {
	inner := NewMemStore(TierBlock, LatencyModel{})
	if err := inner.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner, FaultConfig{Seed: 1})
	fs.Kill()
	if err := fs.Put("x", []byte("y")); !errors.Is(err, ErrStoreKilled) {
		t.Fatalf("Put after kill = %v", err)
	}
	if _, err := fs.Get("k"); !errors.Is(err, ErrStoreKilled) {
		t.Fatalf("Get after kill = %v", err)
	}
	if _, err := fs.List(""); !errors.Is(err, ErrStoreKilled) {
		t.Fatalf("List after kill = %v", err)
	}
	// The kill severs the wrapper only; the "cloud" itself survives.
	if v, err := inner.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("inner store damaged by kill: %q, %v", v, err)
	}
}

// TestRetryStoreAbsorbsTransients: a RetryStore over a FaultStore injecting
// only retryable classes lets a retry-unaware consumer run fault-free —
// including torn Puts, which a blind re-Put fully rewrites.
func TestRetryStoreAbsorbsTransients(t *testing.T) {
	inner := NewMemStore(TierBlock, LatencyModel{})
	faulty := NewFaultStore(inner, FaultConfig{
		Seed:          3,
		TransientProb: 0.15,
		TornWriteProb: 0.1,
	})
	rs := NewRetryStore(faulty, RetryPolicy{Attempts: 12, BaseBackoff: time.Microsecond})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		data := []byte(fmt.Sprintf("payload-%d", i))
		if err := rs.Put(key, data); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
		got, err := rs.Get(key)
		if err != nil || string(got) != string(data) {
			t.Fatalf("Get %s = %q, %v", key, got, err)
		}
		if _, err := rs.GetRange(key, 0, 4); err != nil {
			t.Fatalf("GetRange %s: %v", key, err)
		}
	}
	if c := faulty.Injected(); c.Transient == 0 || c.TornWrite == 0 {
		t.Fatalf("fault layer never fired under the retries: %+v", c)
	}
	// Non-retryable errors still pass straight through.
	faulty.Kill()
	if _, err := rs.Get("k0"); !errors.Is(err, ErrStoreKilled) {
		t.Fatalf("Get after kill = %v, want ErrStoreKilled", err)
	}
}

// TestGetOrFetchRetriesTransient: the cache's singleflight leader retries
// transient fetch failures before sharing an error with waiters.
func TestGetOrFetchRetriesTransient(t *testing.T) {
	c := NewLRUCache(1 << 20)
	calls := 0
	v, err := c.GetOrFetch("k", func() ([]byte, error) {
		calls++
		if calls < 3 {
			return nil, &TransientError{Op: "get", Key: "k"}
		}
		return []byte("data"), nil
	})
	if err != nil || string(v) != "data" {
		t.Fatalf("GetOrFetch = %q, %v", v, err)
	}
	if calls != 3 {
		t.Fatalf("fetch called %d times, want 3 (two retries)", calls)
	}
	// The result was cached despite the early failures.
	if got, ok := c.Get("k"); !ok || string(got) != "data" {
		t.Fatalf("cache miss after retried fetch: %q, %v", got, ok)
	}
}
