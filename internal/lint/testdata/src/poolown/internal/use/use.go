// Package use exercises poolown's intra-function checker against the
// getter/releaser summaries of fix/internal/pool.
package use

import (
	"errors"

	"fix/internal/pool"
)

// OK releases on the single path.
func OK() int {
	b := pool.GetBuf()
	n := len(b.B)
	pool.PutBuf(b)
	return n
}

// OKDefer: a deferred release covers every return.
func OKDefer(x int) int {
	b := pool.GetBuf()
	defer pool.PutBuf(b)
	if x > 0 {
		return x
	}
	return len(b.B)
}

// LeakReturn forgets the buffer on the error path.
func LeakReturn(fail bool) error {
	b := pool.GetBuf()
	if fail {
		return errors.New("boom") // want `pooled value "b" \(obtained at line \d+\) is not released on this path`
	}
	pool.PutBuf(b)
	return nil
}

// LeakEnd never releases at all.
func LeakEnd() {
	b := pool.GetBuf()
	_ = len(b.B)
} // want `pooled value "b" \(obtained at line \d+\) is not released on this path`

// DoubleRelease puts the same buffer back twice.
func DoubleRelease() {
	b := pool.GetBuf()
	pool.PutBuf(b)
	pool.PutBuf(b) // want `pooled value "b" released twice`
}

// UseAfterRelease touches the buffer after it went back to the pool.
func UseAfterRelease() int {
	b := pool.GetBuf()
	pool.PutBuf(b)
	return len(b.B) // want `pooled value "b" used after release`
}

// TransitiveGetter: NewIter's result is pooled too, and the error path
// leaks it.
func TransitiveGetter(fail bool) error {
	it := pool.NewIter(pool.GetBuf())
	if fail {
		return errors.New("boom") // want `pooled value "it" \(obtained at line \d+\) is not released on this path`
	}
	it.Release()
	return nil
}

// MethodRelease releases through the pooled value's own method.
func MethodRelease() {
	it := pool.NewIter(nil)
	for it.Next() {
	}
	it.Release()
}

// DispatchRelease releases through the Releasable interface.
func DispatchRelease() {
	it := pool.NewIter(nil)
	pool.ReleaseAny(it)
}

type holder struct{ b *pool.Buf }

// EscapeStore hands ownership into a struct: tracking stops, no finding.
func EscapeStore(h *holder) {
	b := pool.GetBuf()
	h.b = b
}

// EscapeReturn transfers ownership to the caller (and is itself a getter).
func EscapeReturn() *pool.Buf {
	b := pool.GetBuf()
	return b
}

// ClosureEscape: a closure captures the value; tracking stops.
func ClosureEscape() func() {
	b := pool.GetBuf()
	return func() { pool.PutBuf(b) }
}

// LoopConservative: released inside a conditional loop body — the checker
// drops tracking rather than guessing iteration counts.
func LoopConservative(n int) {
	b := pool.GetBuf()
	for i := 0; i < n; i++ {
		if i == 0 {
			pool.PutBuf(b)
		}
	}
}
