// Package core assembles TimeUnion: the in-memory head (unified data
// model, memory-efficient index and chunks), the elastic time-partitioned
// LSM-tree on hybrid cloud storage, and the sequence-ID write-ahead log.
// It exposes the operations of paper §3.4: slow- and fast-path insertion
// for individual timeseries and groups, and tag-selector queries over the
// full hybrid-storage data set.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
	"timeunion/internal/head"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
	"timeunion/internal/obs"
	"timeunion/internal/wal"
)

// ChunkStore is the persistence engine under the head. TimeUnion uses the
// time-partitioned LSM-tree; the TU-LDB baseline (§4.1) swaps in a classic
// leveled LSM behind the same interface.
type ChunkStore interface {
	// Put inserts a serialized chunk.
	Put(key encoding.Key, value []byte) error
	// ChunksFor returns the chunks of id overlapping [mint, maxt],
	// rank-sorted oldest first.
	ChunksFor(id uint64, mint, maxt int64) ([]lsm.ChunkRef, error)
	// ChunksForInto is ChunksFor appending into buf (overwritten from
	// index 0), so per-query chunk lists reuse one backing array. The
	// returned Values may alias immutable storage and must be treated as
	// read-only (see lsm.ChunksForInto).
	ChunksForInto(buf []lsm.ChunkRef, id uint64, mint, maxt int64) ([]lsm.ChunkRef, error)
	// Flush forces buffered data down and waits for background work.
	Flush() error
	// ApplyRetention drops data entirely older than the watermark.
	ApplyRetention(watermark int64) int
	// Close flushes and shuts down.
	Close() error
}

// Options configures a DB.
type Options struct {
	// Dir is the local directory for the WAL and mmap files. Empty means
	// ephemeral: no WAL, heap-backed arrays.
	Dir string
	// Fast and Slow are the two storage tiers. Slow may equal Fast for
	// the EBS-only configuration (Figure 17).
	Fast cloud.Store
	Slow cloud.Store
	// CacheBytes bounds the slow-tier segment cache (default 1 GB, §4.1).
	CacheBytes int64

	// ChunkSamples is the in-memory chunk size (default 32, §3.2).
	ChunkSamples int
	// SlotsPerRegion tunes the mmap arrays (tests use small values).
	SlotsPerRegion int
	// SlotSize is the fixed chunk slot size in the mmap arrays.
	SlotSize int

	// LSM geometry; zero values take the lsm package defaults.
	MemTableSize              int64
	L0PartitionLength         int64
	L2PartitionLength         int64
	PartitionLengthLowerBound int64
	MaxL0Partitions           int
	PatchThreshold            int
	TargetTableSize           int
	BlockSize                 int
	FastLimit                 int64
	DynamicSizing             bool
	// CompactionWorkers bounds the LSM compaction executor pool (0 = the
	// lsm package default of 2). Disjoint-partition compactions run
	// concurrently up to this many.
	CompactionWorkers int

	// DisableWAL turns off logging (benchmark configurations that measure
	// pure engine throughput).
	DisableWAL bool
	// WALSegmentSize bounds each WAL sample segment file (0 = the wal
	// package default). Small values force frequent rolls, exercising the
	// roll/purge path (crash-recovery tests).
	WALSegmentSize int

	// ReplicaRefreshInterval is the poll interval of a read replica's
	// background refresh loop (OpenReplica only). 0 means the default of
	// one second; a negative value disables the loop so tests can drive
	// Refresh deterministically.
	ReplicaRefreshInterval time.Duration

	// QueryConcurrency bounds the worker pool a Query fans its matched
	// series/group ids out over. 0 means runtime.GOMAXPROCS(0); 1 runs
	// the serial path. Each worker independently fetches chunks from the
	// LSM/cloud tiers, so on a slow-tier-heavy selector the workers
	// overlap object-store latencies.
	QueryConcurrency int

	// Store overrides the chunk store (used by the TU-LDB baseline).
	// When nil the time-partitioned LSM-tree is built from the options
	// above.
	Store ChunkStore

	// Metrics is the observability registry every layer registers its
	// instruments on. Nil means the DB creates its own (retrievable via
	// Metrics()); set DisableMetrics to run fully un-instrumented.
	Metrics *obs.Registry
	// DisableMetrics turns off all instrumentation (overhead baselines).
	DisableMetrics bool

	// Journal overrides the operational event journal (DESIGN.md §4.12).
	// Nil means the DB creates its own, retrievable via Journal(); set
	// DisableJournal to run without one.
	Journal *obs.Journal
	// JournalCapacity sizes the DB-created journal ring
	// (0 = obs.DefaultJournalCapacity). Ignored when Journal is set.
	JournalCapacity int
	// DisableJournal turns off the operational event journal.
	DisableJournal bool
}

// DB is a TimeUnion database instance.
type DB struct {
	opts    Options
	head    *head.Head
	store   ChunkStore
	wal     *wal.WAL
	cache   *cloud.LRUCache
	maxT    maxSeenT // newest appended timestamp, for retention watermarks
	metrics *obs.Registry
	m       *dbMetrics   // nil when DisableMetrics
	journal *obs.Journal // nil when DisableJournal

	// Read-replica state (replica.go). replica marks a DB opened with
	// OpenReplica: mutating entry points return ErrReadOnly and the
	// refresh loop below polls the shared stores.
	replica     bool
	replicaStop chan struct{}
	replicaWg   sync.WaitGroup

	// Catalog publication state (catalog.go), shared by the writer's
	// publish path and the replica's load path.
	catMu  sync.Mutex
	catVer uint64
	catCRC uint32
}

// Open creates or recovers a database.
func Open(opts Options) (*DB, error) {
	if opts.Fast == nil || opts.Slow == nil {
		return nil, fmt.Errorf("core: Fast and Slow stores are required")
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 1 << 30
	}
	reg := opts.Metrics
	if reg == nil && !opts.DisableMetrics {
		reg = obs.NewRegistry()
	}
	if opts.DisableMetrics {
		reg = nil
	}
	journal := opts.Journal
	if journal == nil && !opts.DisableJournal {
		journal = obs.NewJournal(opts.JournalCapacity)
	}
	if opts.DisableJournal {
		journal = nil
	}
	openStart := time.Now()
	db := &DB{opts: opts, cache: cloud.NewLRUCache(opts.CacheBytes), metrics: reg, journal: journal}
	db.m = newDBMetrics(reg)
	db.registerDBGauges(reg)
	if reg != nil {
		journal.RegisterMetrics(reg)
		obs.RegisterProcessMetrics(reg)
	}

	var w *wal.WAL
	if opts.Dir != "" && !opts.DisableWAL {
		var err error
		w, err = wal.Open(opts.Dir+"/wal", wal.Options{SegmentSize: opts.WALSegmentSize, Metrics: reg, Journal: journal})
		if err != nil {
			return nil, err
		}
		db.wal = w
	}

	// The flush hook needs the head, which needs the store's Put as its
	// sink; break the cycle with a late-bound pointer.
	var h *head.Head
	if opts.Store != nil {
		db.store = opts.Store
	} else {
		tree, err := lsm.Open(lsm.Options{
			Fast:                      opts.Fast,
			Slow:                      opts.Slow,
			Cache:                     db.cache,
			MemTableSize:              opts.MemTableSize,
			L0PartitionLength:         opts.L0PartitionLength,
			L2PartitionLength:         opts.L2PartitionLength,
			PartitionLengthLowerBound: opts.PartitionLengthLowerBound,
			MaxL0Partitions:           opts.MaxL0Partitions,
			PatchThreshold:            opts.PatchThreshold,
			TargetTableSize:           opts.TargetTableSize,
			BlockSize:                 opts.BlockSize,
			FastLimit:                 opts.FastLimit,
			DynamicSizing:             opts.DynamicSizing,
			CompactionWorkers:         opts.CompactionWorkers,
			Metrics:                   reg,
			Journal:                   journal,
			OnFlush: func(key encoding.Key, seq uint64) {
				if h != nil {
					h.OnChunkPersisted(key, seq)
				}
			},
		})
		if err != nil {
			if w != nil {
				w.Close()
			}
			return nil, err
		}
		db.store = tree
	}

	headDir := ""
	if opts.Dir != "" {
		headDir = opts.Dir + "/head"
	}
	hh, err := head.New(head.Options{
		ChunkSamples:   opts.ChunkSamples,
		Dir:            headDir,
		SlotSize:       opts.SlotSize,
		SlotsPerRegion: opts.SlotsPerRegion,
		WAL:            w,
		Sink:           db.store.Put,
		Metrics:        reg,
	})
	if err != nil {
		db.store.Close()
		if w != nil {
			w.Close()
		}
		return nil, err
	}
	h = hh
	db.head = hh

	recovered := false
	if w != nil {
		start := time.Now()
		if err := hh.Recover(); err != nil {
			db.Close()
			return nil, fmt.Errorf("core: recovery: %w", err)
		}
		if db.m != nil {
			db.m.recovery.Set(time.Since(start).Milliseconds())
		}
		recovered = true
	}
	// Publish the series catalog so read replicas on the same shared
	// stores can resolve the recovered series by tag (catalog.go). Version
	// numbering resumes past the newest already-published version — a
	// restarted writer must not publish a version replicas would ignore
	// as older than what they already installed.
	if err := db.recoverCatalogVersion(); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.publishCatalog(); err != nil {
		db.Close()
		return nil, err
	}
	if journal != nil {
		fields := map[string]any{
			"series":    hh.NumSeries(),
			"groups":    hh.NumGroups(),
			"recovered": recovered,
		}
		if w != nil {
			fields["wal_corruptions"] = len(w.CorruptionsRepaired())
			fields["recovery_dropped"] = hh.RecoveryDropped()
		}
		journal.Emit("core.open", openStart, nil, fields)
	}
	return db, nil
}

// Journal exposes the operational event journal (nil when disabled).
func (db *DB) Journal() *obs.Journal { return db.journal }

// TreeSnapshot renders the live LSM table inventory for the
// /api/v1/lsmtree endpoint and `tuctl tree`. ok is false when the DB runs
// on a substituted chunk store (no time-partitioned tree to introspect).
func (db *DB) TreeSnapshot() (lsm.TreeSnapshot, bool) {
	if tree, ok := db.store.(*lsm.LSM); ok {
		return tree.Snapshot(), true
	}
	return lsm.TreeSnapshot{}, false
}

// Close flushes open chunks and shuts everything down. On a replica it
// stops the refresh loop and releases the view's table handles (which
// never deletes shared objects — the writer owns them).
func (db *DB) Close() error {
	var firstErr error
	if db.replicaStop != nil {
		close(db.replicaStop)
		db.replicaWg.Wait()
		db.replicaStop = nil
	}
	if db.head != nil && !db.replica {
		if err := db.head.FlushOpenChunks(); err != nil {
			firstErr = err
		}
	}
	if db.store != nil {
		if err := db.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Publish the catalog after the store's final flush has committed its
	// manifest: a writer that never called Flush explicitly (memtable-
	// pressure flushes only) must not shut down leaving replicas with
	// tables they can't resolve series in.
	if db.head != nil && !db.replica {
		if err := db.publishCatalog(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if db.wal != nil {
		if err := db.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if db.head != nil {
		if err := db.head.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Append inserts one sample by full tag set and returns the series ID for
// fast-path use (§3.4 Put(Timeseries), first API).
func (db *DB) Append(ls labels.Labels, t int64, v float64) (uint64, error) {
	if db.replica {
		return 0, ErrReadOnly
	}
	db.maxT.observe(t)
	if m := db.m; m != nil {
		if m.appends.Add(uint64(t), 1)&appendSampleMask == 0 {
			start := time.Now()
			id, err := db.head.Append(ls, t, v)
			m.appendLat.Observe(time.Since(start))
			return id, err
		}
	}
	return db.head.Append(ls, t, v)
}

// AppendFast inserts one sample by series ID (§3.4, second API).
func (db *DB) AppendFast(id uint64, t int64, v float64) error {
	if db.replica {
		return ErrReadOnly
	}
	db.maxT.observe(t)
	if m := db.m; m != nil {
		if m.appends.Add(id, 1)&appendSampleMask == 0 {
			start := time.Now()
			err := db.head.AppendFast(id, t, v)
			m.appendLat.Observe(time.Since(start))
			return err
		}
	}
	return db.head.AppendFast(id, t, v)
}

// AppendGroup inserts one shared-timestamp round into a group (§3.4
// Put(Group), first API). uniqueTags[i] are each member's non-shared tags.
func (db *DB) AppendGroup(groupTags labels.Labels, uniqueTags []labels.Labels, t int64, vals []float64) (uint64, []int, error) {
	if db.replica {
		return 0, nil, ErrReadOnly
	}
	db.maxT.observe(t)
	if m := db.m; m != nil {
		if m.appends.Add(uint64(t), uint64(len(vals)))&appendSampleMask == 0 {
			start := time.Now()
			gid, slots, err := db.head.AppendGroup(groupTags, uniqueTags, t, vals)
			m.appendLat.Observe(time.Since(start))
			return gid, slots, err
		}
	}
	return db.head.AppendGroup(groupTags, uniqueTags, t, vals)
}

// AppendGroupFast inserts one round by group ID and slot indexes (§3.4,
// second API).
func (db *DB) AppendGroupFast(gid uint64, slots []int, t int64, vals []float64) error {
	if db.replica {
		return ErrReadOnly
	}
	db.maxT.observe(t)
	if m := db.m; m != nil {
		if m.appends.Add(gid, uint64(len(vals)))&appendSampleMask == 0 {
			start := time.Now()
			err := db.head.AppendGroupFast(gid, slots, t, vals)
			m.appendLat.Observe(time.Since(start))
			return err
		}
	}
	return db.head.AppendGroupFast(gid, slots, t, vals)
}

// Flush pushes all buffered data (open chunks and memtables) down to the
// chunk store and waits for triggered compactions, then republishes the
// series catalog if it changed — the manifest commit inside the store
// flush is what makes the new tables visible to read replicas, and the
// catalog publish afterwards lets them resolve any new series (a replica
// refreshing between the two sees the new catalog no later than its
// next poll).
func (db *DB) Flush() error {
	if db.replica {
		return ErrReadOnly
	}
	if err := db.head.FlushOpenChunks(); err != nil {
		return err
	}
	if err := db.store.Flush(); err != nil {
		return err
	}
	return db.publishCatalog()
}

// Sync fsyncs the write-ahead log. After Sync returns, every previously
// acknowledged append survives a process crash (the durability contract;
// without an explicit Sync the WAL relies on segment-roll and close-time
// syncs, trading a bounded window of recent samples for write latency).
func (db *DB) Sync() error {
	if db.replica {
		return ErrReadOnly
	}
	if db.wal == nil {
		return nil
	}
	return db.wal.Sync()
}

// Series is one query result: a timeseries' full tag set and its samples.
type Series struct {
	Labels  labels.Labels
	Samples []lsm.SamplePair
}

// Query evaluates tag selectors over [mint, maxt] (§3.4 Get): the inverted
// index resolves the selectors to series/group IDs; samples are merged from
// the head's open chunks and the chunk store. Matched ids are fanned out
// over a bounded worker pool sized by Options.QueryConcurrency.
func (db *DB) Query(mint, maxt int64, matchers ...*labels.Matcher) ([]Series, error) {
	return db.QueryContext(context.Background(), mint, maxt, matchers...)
}

// QueryContext is Query with cancellation: the first failing series aborts
// the whole query, and a cancelled context stops workers early.
func (db *DB) QueryContext(ctx context.Context, mint, maxt int64, matchers ...*labels.Matcher) ([]Series, error) {
	return db.QueryWorkers(ctx, db.opts.QueryConcurrency, mint, maxt, matchers...)
}

// QueryWorkers evaluates a query with an explicit worker count, overriding
// Options.QueryConcurrency (0 = runtime.GOMAXPROCS(0), 1 = serial). The
// result is identical to the serial path regardless of worker count:
// per-id results are collected in index order before the final label sort.
func (db *DB) QueryWorkers(ctx context.Context, workers int, mint, maxt int64, matchers ...*labels.Matcher) (out []Series, err error) {
	tr := obs.TraceFrom(ctx)
	if db.m != nil {
		start := time.Now()
		db.m.queries.Inc()
		defer func() {
			db.m.queryLat.Observe(time.Since(start))
			if err != nil {
				db.m.queryErrs.Inc()
			}
		}()
	}
	// Tier byte attribution: delta the stores' own read accounting around
	// the query. Exact for a lone query; concurrent queries' reads land in
	// whichever trace is open, which is the documented approximation.
	var fast0, slow0, hits0, miss0 uint64
	if tr != nil {
		fast0 = db.opts.Fast.Stats().BytesRead
		slow0 = db.opts.Slow.Stats().BytesRead
		hits0, miss0 = db.cache.HitRate()
		defer func() {
			tr.SetTierBytes("fast", int64(db.opts.Fast.Stats().BytesRead-fast0))
			tr.SetTierBytes("slow", int64(db.opts.Slow.Stats().BytesRead-slow0))
			h1, m1 := db.cache.HitRate()
			tr.SetCache(h1-hits0, m1-miss0)
		}()
	}

	sel := tr.StartSpan("index_select")
	ids, err := db.head.Index().Select(matchers...)
	sel.End()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	perID := make([][]Series, len(ids))
	if workers <= 1 {
		for i, id := range ids {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := db.queryID(tr, id, mint, maxt, matchers)
			if err != nil {
				return nil, err
			}
			perID[i] = res
		}
	} else if err := db.queryParallel(ctx, workers, ids, perID, mint, maxt, matchers); err != nil {
		return nil, err
	}
	for _, res := range perID {
		out = append(out, res...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Labels.Compare(out[j].Labels) < 0 })
	return out, nil
}

// queryParallel fans ids out over a fixed pool of workers filling perID in
// place. The first error cancels the remaining work (first-error-wins).
func (db *DB) queryParallel(parent context.Context, workers int, ids []uint64, perID [][]Series, mint, maxt int64, matchers []*labels.Matcher) error {
	tr := obs.TraceFrom(parent)
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				res, err := db.queryID(tr, ids[i], mint, maxt, matchers)
				if err != nil {
					fail(err)
					continue
				}
				perID[i] = res
			}
		}()
	}
feed:
	for i := range ids {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// queryID evaluates one matched id by building the lazy iterator pipeline
// (seriesEntries/groupEntries) and draining it into sample slices. The
// drain is the only place chunk payloads decode, so the decode span
// brackets it and carries the decoded-byte count.
func (db *DB) queryID(tr *obs.Trace, id uint64, mint, maxt int64, matchers []*labels.Matcher) ([]Series, error) {
	var decoded int64
	sc := getQueryScratch()
	defer putQueryScratch(sc)
	entries, err := db.entriesFor(tr, id, mint, maxt, matchers, db.onDecode(&decoded), sc.entries[:0], sc)
	if err != nil {
		return nil, err
	}
	sc.entries = entries
	sp := tr.StartSpan("decode")
	var out []Series
	for i, e := range entries {
		samples, derr := drainPairs(e.Iterator)
		chunkenc.ReleaseIterator(e.Iterator)
		if derr != nil {
			for _, rest := range entries[i+1:] {
				chunkenc.ReleaseIterator(rest.Iterator)
			}
			err = fmt.Errorf("core: query id %d: %w", id, derr)
			break
		}
		if len(samples) == 0 {
			continue
		}
		out = append(out, Series{Labels: e.Labels, Samples: samples})
	}
	sp.AddBytes(decoded)
	sp.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// drainPairs materializes an iterator (the streaming→slice adapter that
// Query is built on).
func drainPairs(it chunkenc.SampleIterator) ([]lsm.SamplePair, error) {
	var out []lsm.SamplePair
	for it.Next() {
		t, v := it.At()
		out = append(out, lsm.SamplePair{T: t, V: v})
	}
	return out, it.Err()
}

func matchAll(ls labels.Labels, matchers []*labels.Matcher) bool {
	for _, m := range matchers {
		if !m.Matches(ls.Get(m.Name)) {
			return false
		}
	}
	return true
}

// LabelValues lists the values recorded for a tag name (with live
// postings), via the global index's trie prefix scan.
func (db *DB) LabelValues(name string) []string {
	return db.head.Index().LabelValues(name)
}

// ApplyRetention drops all data older than the watermark: store partitions,
// head memory objects, and (eventually) WAL segments (§3.3). On a replica
// it returns ErrReadOnly — retention is the writer's job, observed here
// through the next manifest refresh.
func (db *DB) ApplyRetention(watermark int64) (partitions, objects int, err error) {
	if db.replica {
		return 0, 0, ErrReadOnly
	}
	partitions = db.store.ApplyRetention(watermark)
	objects = db.head.PurgeBefore(watermark)
	if db.wal != nil {
		// Purge WAL segments whose samples are all flushed.
		if _, err := db.wal.Purge(); err != nil {
			// Purge failures only delay space reclamation.
			_ = err
		}
	}
	return partitions, objects, nil
}

// PurgeWAL runs the background WAL purge once (the paper's periodic purge
// worker, exposed for deterministic operation).
func (db *DB) PurgeWAL() (int, error) {
	if db.replica {
		return 0, ErrReadOnly
	}
	if db.wal == nil {
		return 0, nil
	}
	return db.wal.Purge()
}

// Stats is a point-in-time snapshot of the database's resource usage.
type Stats struct {
	NumSeries int
	NumGroups int
	Memory    head.MemoryFootprint
	LSM       lsm.Stats
	FastBytes int64
	SlowBytes int64
	CacheUsed int64
	// WALCorruptions counts mid-segment corruptions found and repaired
	// (truncated) when this instance opened the WAL.
	WALCorruptions int
	// RecoveryDropped counts orphan WAL records (samples or members whose
	// series/group definition did not survive the crash) skipped during
	// recovery. Such writes were never acknowledged.
	RecoveryDropped uint64
}

// Stats returns current counters. LSM stats are zero when running with a
// substituted chunk store.
func (db *DB) Stats() Stats {
	st := Stats{
		NumSeries: db.head.NumSeries(),
		NumGroups: db.head.NumGroups(),
		Memory:    db.head.Footprint(),
		FastBytes: db.opts.Fast.TotalBytes(),
		SlowBytes: db.opts.Slow.TotalBytes(),
		CacheUsed: db.cache.UsedBytes(),
	}
	if tree, ok := db.store.(*lsm.LSM); ok {
		st.LSM = tree.Stats()
	}
	if db.wal != nil {
		st.WALCorruptions = len(db.wal.CorruptionsRepaired())
	}
	st.RecoveryDropped = db.head.RecoveryDropped()
	return st
}

// Head exposes the in-memory layer (experiment harness access).
func (db *DB) Head() *head.Head { return db.head }

// ChunkStoreRef exposes the underlying chunk store (experiment harness
// access, e.g. partition-length traces for Figure 19).
func (db *DB) ChunkStoreRef() ChunkStore { return db.store }

// Cache exposes the slow-tier segment cache.
func (db *DB) Cache() *cloud.LRUCache { return db.cache }
