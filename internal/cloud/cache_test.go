package cloud

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLRUCacheOverwriteAccounting is the regression test for byte
// accounting when a key is overwritten in place: used bytes must track the
// delta in both directions and eviction must still honor capacity.
func TestLRUCacheOverwriteAccounting(t *testing.T) {
	c := NewLRUCache(100)
	c.Put("k", make([]byte, 40))
	if got := c.UsedBytes(); got != 40 {
		t.Fatalf("used after insert = %d, want 40", got)
	}
	// Grow in place.
	c.Put("k", make([]byte, 70))
	if got := c.UsedBytes(); got != 70 {
		t.Fatalf("used after grow = %d, want 70", got)
	}
	// Shrink in place.
	c.Put("k", make([]byte, 10))
	if got := c.UsedBytes(); got != 10 {
		t.Fatalf("used after shrink = %d, want 10", got)
	}
	// Growing an entry may push the total over capacity: older entries
	// evict, and the accounting stays exact.
	c.Put("other", make([]byte, 30))
	c.Put("k", make([]byte, 90))
	if _, ok := c.Get("other"); ok {
		t.Fatal("LRU entry survived an over-capacity overwrite")
	}
	if got := c.UsedBytes(); got != 90 {
		t.Fatalf("used after evicting overwrite = %d, want 90", got)
	}
}

// TestLRUCacheOversizedOverwriteDropsStale: overwriting a cached key with a
// value too large to cache must not keep serving the stale old bytes.
func TestLRUCacheOversizedOverwriteDropsStale(t *testing.T) {
	c := NewLRUCache(10)
	c.Put("k", []byte("old"))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("seed value not cached")
	}
	c.Put("k", make([]byte, 11)) // larger than the whole capacity
	if d, ok := c.Get("k"); ok {
		t.Fatalf("stale value %q still served after oversized overwrite", d)
	}
	if got := c.UsedBytes(); got != 0 {
		t.Fatalf("used = %d after dropping sole entry, want 0", got)
	}
}

// TestGetOrFetchSingleflight: N concurrent misses on one key must issue
// exactly one fetch, with every caller receiving the fetched bytes.
func TestGetOrFetchSingleflight(t *testing.T) {
	c := NewLRUCache(1 << 20)
	var fetches atomic.Int64
	release := make(chan struct{})
	const callers = 16

	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.GetOrFetch("seg", func() ([]byte, error) {
				fetches.Add(1)
				<-release // hold the fetch open so every caller piles up
				return []byte("payload"), nil
			})
		}(i)
	}
	// Wait until all callers are either the leader or parked on it.
	for c.SharedFetches() != callers-1 {
	}
	close(release)
	wg.Wait()

	if n := fetches.Load(); n != 1 {
		t.Fatalf("%d fetches issued, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], []byte("payload")) {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
	if shared := c.SharedFetches(); shared != callers-1 {
		t.Fatalf("shared fetches = %d, want %d", shared, callers-1)
	}
	// The result landed in the cache: the next lookup is a pure hit.
	if _, ok := c.Get("seg"); !ok {
		t.Fatal("fetched segment not cached")
	}
}

// TestGetOrFetchErrorNotCached: a failed fetch is shared with waiters but
// not cached, so the next call retries.
func TestGetOrFetchErrorNotCached(t *testing.T) {
	c := NewLRUCache(1 << 20)
	var calls atomic.Int64
	boom := errors.New("transient outage")
	_, err := c.GetOrFetch("k", func() ([]byte, error) {
		calls.Add(1)
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	d, err := c.GetOrFetch("k", func() ([]byte, error) {
		calls.Add(1)
		return []byte("ok"), nil
	})
	if err != nil || string(d) != "ok" {
		t.Fatalf("retry got (%q, %v)", d, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d fetch calls, want 2 (error must not be cached)", n)
	}
}

// TestGetOrFetchManyKeys hammers distinct keys concurrently to shake out
// races between the flight table and eviction under -race.
func TestGetOrFetchManyKeys(t *testing.T) {
	c := NewLRUCache(256) // small: constant eviction pressure
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				d, err := c.GetOrFetch(key, func() ([]byte, error) {
					return []byte(key), nil
				})
				if err != nil || string(d) != key {
					t.Errorf("GetOrFetch(%s) = (%q, %v)", key, d, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
