package bench

import (
	"context"
	"fmt"
	"sort"

	"timeunion/internal/chunkenc"
	"timeunion/internal/core"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
	"timeunion/internal/tsbs"
	"timeunion/internal/tuple"
)

// IterNarrowRange measures the streaming read path against the pre-refactor
// eager pipeline on a narrow query late in a time partition — the shape the
// iterator refactor targets.
//
// Two costs are compared:
//
//   - decoded bytes: the seed read path called tuple.TimeRange on every
//     candidate chunk between the partition start and the query end, and
//     TimeRange decoded the full payload just to learn the bounds. The
//     baseline therefore charges every candidate chunk; the streaming path
//     reads bounds from the tuple envelope and charges only the chunks its
//     merge cursor actually opens (the engine's decoded-bytes counter).
//
//   - heap allocations: the eager pipeline materializes every overlapping
//     chunk into sample slices and re-merges per chunk before clipping;
//     the streaming path decodes through iterators straight into the
//     clipped result.
func IterNarrowRange(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("iter", "Streaming iterator read path (narrow range)")
	r.Header = []string{"path", "metric", "value"}

	w, err := newIterWorkload(cfg)
	if err != nil {
		return nil, err
	}
	defer w.close()
	e, db := w.e, w.e.db
	mint, maxt, pstart, sel := w.mint, w.maxt, w.pstart, w.sel

	streamingQuery := w.streaming
	eagerResult, baselineDecoded, eagerDecoded, err := eagerQuery(db, pstart, mint, maxt, sel)
	if err != nil {
		return nil, err
	}

	before := db.Metrics().Snapshot()["timeunion_db_decoded_bytes_total"]
	got, err := streamingQuery()
	if err != nil {
		return nil, err
	}
	streamDecoded := db.Metrics().Snapshot()["timeunion_db_decoded_bytes_total"] - before

	// The two paths must agree before their costs are comparable.
	if err := sameSeries(got, eagerResult); err != nil {
		return nil, fmt.Errorf("bench: streaming/eager mismatch: %w", err)
	}
	nSamples := 0
	for _, s := range got {
		nSamples += len(s.Samples)
	}

	const iters = 20
	streamAlloc, err := measureAllocs(iters, func() error {
		_, err := streamingQuery()
		return err
	})
	if err != nil {
		return nil, err
	}
	eagerAlloc, err := measureAllocs(iters, func() error {
		_, _, _, err := eagerQuery(db, pstart, mint, maxt, sel)
		return err
	})
	if err != nil {
		return nil, err
	}
	r.setAlloc("streaming", streamAlloc)
	r.setAlloc("eager", eagerAlloc)

	pct := func(base, now float64) float64 {
		if base <= 0 {
			return 0
		}
		return 100 * (base - now) / base
	}
	r.addRow("query", "series x samples", fmt.Sprintf("%d x %d", len(got), nSamples))
	r.addRow("eager", "decoded bytes (seed bounds probing)", fmtBytes(int64(baselineDecoded)))
	r.addRow("eager", "decoded bytes (overlap only)", fmtBytes(int64(eagerDecoded)))
	r.addRow("streaming", "decoded bytes", fmtBytes(int64(streamDecoded)))
	r.addRow("eager", "allocs/op", fmt.Sprintf("%.0f", eagerAlloc.AllocsPerOp))
	r.addRow("streaming", "allocs/op", fmt.Sprintf("%.0f", streamAlloc.AllocsPerOp))
	r.addRow("eager", "bytes/op", fmtBytes(int64(eagerAlloc.BytesPerOp)))
	r.addRow("streaming", "bytes/op", fmtBytes(int64(streamAlloc.BytesPerOp)))
	r.Values["decoded:eager"] = float64(baselineDecoded)
	r.Values["decoded:overlap"] = float64(eagerDecoded)
	r.Values["decoded:streaming"] = streamDecoded
	r.Values["decoded:reduction-pct"] = pct(float64(baselineDecoded), streamDecoded)
	r.Values["allocs:eager"] = eagerAlloc.AllocsPerOp
	r.Values["allocs:streaming"] = streamAlloc.AllocsPerOp
	r.Values["allocs:reduction-pct"] = pct(eagerAlloc.AllocsPerOp, streamAlloc.AllocsPerOp)
	r.Values["bytes:eager"] = eagerAlloc.BytesPerOp
	r.Values["bytes:streaming"] = streamAlloc.BytesPerOp
	r.Values["bytes:reduction-pct"] = pct(eagerAlloc.BytesPerOp, streamAlloc.BytesPerOp)
	r.note("narrow window [%d,%d] over %d logical hours; decode reduction %.1f%%, alloc reduction %.1f%%",
		mint, maxt, cfg.SpanHours, r.Values["decoded:reduction-pct"], r.Values["allocs:reduction-pct"])
	r.setMetrics("TU", e.metrics())
	return r, nil
}

// iterWorkload is the shared narrow-range query workload of the iter and
// alloc experiments: a TU engine loaded with TSBS DevOps data and a window
// covering the tail 10% of a mid-retention L0 partition.
type iterWorkload struct {
	e                  *tuEngine
	sel                *labels.Matcher
	pstart, mint, maxt int64
}

// newIterWorkload builds the engine, inserts cfg.SpanHours of rounds, and
// flushes. The narrow window makes envelope-bounds pruning matter: the seed
// path scanned (and bounds-decoded) the partition's chunks from its start,
// the streaming path prunes them via envelope bounds. Using the L0 geometry
// for the partition start is conservative — once the partition is compacted
// into the 4x longer L2 windows the seed scanned even more.
func newIterWorkload(cfg Config) (*iterWorkload, error) {
	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	ec := newEngineConfig(cfg, hosts)
	e, err := newTUEngine(ec, "TU")
	if err != nil {
		return nil, err
	}
	interval := cfg.HourMs / 120
	span := int64(cfg.SpanHours) * cfg.HourMs
	gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)
	for round := 0; round < int(span/interval); round++ {
		t, vals := gen.Round()
		if err := e.insertRound(t, vals); err != nil {
			e.close()
			return nil, err
		}
	}
	if err := e.flush(); err != nil {
		e.close()
		return nil, err
	}
	pstart := (span / 2 / ec.l0Len) * ec.l0Len
	return &iterWorkload{
		e:      e,
		sel:    labels.MustEqual("hostname", hosts[0].Hostname()),
		pstart: pstart,
		mint:   pstart + ec.l0Len - ec.l0Len/10,
		maxt:   pstart + ec.l0Len - 1,
	}, nil
}

// streaming runs the QuerySeriesSet pipeline — the serial iterator path —
// drained to []Series so it produces the same materialized shape as the
// eager baseline. (db.Query layers the unchanged worker fan-out on top of
// the same pipeline; measuring under it would charge the refactor for
// machinery it did not touch.)
func (w *iterWorkload) streaming() ([]core.Series, error) {
	set, err := w.e.db.QuerySeriesSet(context.Background(), w.mint, w.maxt, w.sel)
	if err != nil {
		return nil, err
	}
	var out []core.Series
	for set.Next() {
		e := set.At()
		var samples []lsm.SamplePair
		for e.Iterator.Next() {
			t, v := e.Iterator.At()
			samples = append(samples, lsm.SamplePair{T: t, V: v})
		}
		if err := e.Iterator.Err(); err != nil {
			return nil, err
		}
		out = append(out, core.Series{Labels: e.Labels, Samples: samples})
	}
	if err := set.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Labels.Compare(out[j].Labels) < 0 })
	return out, nil
}

func (w *iterWorkload) close() error { return w.e.close() }

// eagerQuery replays the pre-refactor materializing pipeline through the
// exported API, faithfully to the seed read path: the seed's ChunksFor
// decoded every candidate chunk between the partition start and the query
// end just to learn its time bounds (tuple.TimeRange had no envelope
// bounds), then SeriesSamples decoded the overlapping chunks again and
// merged them eagerly, and head samples were overlaid one insertion at a
// time. Returns the result, the bytes decoded for bounds probing, and the
// bytes decoded for the overlapping chunks.
func eagerQuery(db *core.DB, pstart, mint, maxt int64, ms ...*labels.Matcher) ([]core.Series, int64, int64, error) {
	ids, err := db.Head().Index().Select(ms...)
	if err != nil {
		return nil, 0, 0, err
	}
	var out []core.Series
	var probed, overlapped int64
	for _, id := range ids {
		lbls, ok := db.Head().SeriesLabels(id)
		if !ok {
			continue
		}
		cand, err := db.ChunkStoreRef().ChunksFor(id, pstart, maxt)
		if err != nil {
			return nil, 0, 0, err
		}
		chunks := cand[:0:0]
		for _, c := range cand {
			// Seed bounds probing: decode the payload to find its range.
			_, kind, payload, err := tuple.Decode(c.Value)
			if err != nil {
				return nil, 0, 0, err
			}
			if kind != tuple.KindSeries {
				continue
			}
			probed += int64(len(c.Value))
			ss, err := chunkenc.DecodeXORSamples(payload)
			if err != nil {
				return nil, 0, 0, err
			}
			if len(ss) == 0 || ss[len(ss)-1].T < mint || ss[0].T > maxt {
				continue
			}
			overlapped += int64(len(c.Value))
			chunks = append(chunks, c)
		}
		samples, err := lsm.SeriesSamples(chunks, mint, maxt)
		if err != nil {
			return nil, 0, 0, err
		}
		hs, err := db.Head().HeadSamples(id, mint, maxt)
		if err != nil {
			return nil, 0, 0, err
		}
		for _, h := range hs {
			samples = insertPair(samples, lsm.SamplePair{T: h.T, V: h.V})
		}
		if len(samples) == 0 {
			continue
		}
		out = append(out, core.Series{Labels: lbls, Samples: samples})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Labels.Compare(out[j].Labels) < 0 })
	return out, probed, overlapped, nil
}

// insertPair is the seed's per-sample head-overlay insertion.
func insertPair(s []lsm.SamplePair, p lsm.SamplePair) []lsm.SamplePair {
	i := sort.Search(len(s), func(i int) bool { return s[i].T >= p.T })
	if i < len(s) && s[i].T == p.T {
		s[i] = p
		return s
	}
	s = append(s, lsm.SamplePair{})
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

func sameSeries(a, b []core.Series) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d series vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Labels.Compare(b[i].Labels) != 0 {
			return fmt.Errorf("series %d labels differ", i)
		}
		if len(a[i].Samples) != len(b[i].Samples) {
			return fmt.Errorf("series %v: %d samples vs %d", a[i].Labels, len(a[i].Samples), len(b[i].Samples))
		}
		for j := range a[i].Samples {
			if a[i].Samples[j] != b[i].Samples[j] {
				return fmt.Errorf("series %v sample %d differs", a[i].Labels, j)
			}
		}
	}
	return nil
}
