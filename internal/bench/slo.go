package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timeunion/internal/core"
	"timeunion/internal/lsm"
	"timeunion/internal/remote"
	"timeunion/internal/tsbs"
)

// SLO is the closed-loop latency-objective harness (DESIGN.md §4.12): it
// stands up the full server stack (engine + HTTP API + operational
// endpoints) in-process, drives it at a controlled ingest and query rate
// for a fixed duration, then judges the run against configurable p99
// objectives from BOTH vantage points — client-observed HTTP round-trips
// and the server's own scraped /metrics histograms. A failed objective is
// an error, so `tubench -exp slo` doubles as a CI gate.
func SLO(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.SLODuration <= 0 {
		cfg.SLODuration = 10 * time.Second
	}
	if cfg.SLOIngestRate <= 0 {
		cfg.SLOIngestRate = 50
	}
	if cfg.SLOQueryRate <= 0 {
		cfg.SLOQueryRate = 20
	}
	if cfg.SLOWriteP99Ms <= 0 {
		cfg.SLOWriteP99Ms = 50
	}
	if cfg.SLOQueryP99Ms <= 0 {
		cfg.SLOQueryP99Ms = 100
	}

	t := newTiers(cfg)
	db, err := core.Open(core.Options{
		Fast:              t.fast,
		Slow:              t.slow,
		CacheBytes:        1 << 30,
		ChunkSamples:      32,
		SlotsPerRegion:    2048,
		SlotSize:          512,
		MemTableSize:      256 << 10,
		L0PartitionLength: cfg.HourMs / 2,
		L2PartitionLength: cfg.HourMs * 2,
		BlockSize:         4096,
		CompactionWorkers: cfg.CompactionWorkers,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	api := remote.NewServer(&remote.TimeUnionBackend{DB: db})
	srv := httptest.NewServer(remote.NewOpsHandler(api, remote.OpsConfig{
		Metrics: db.Metrics(),
		Journal: db.Journal(),
		Tree:    db.TreeSnapshot,
	}))
	defer srv.Close()
	client := remote.NewClient(srv.URL)

	// Register every series over the slow-path write API, one request per
	// host, collecting the IDs the sustained fast-path load writes against.
	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	ids := make([][]uint64, len(hosts))
	for hi, h := range hosts {
		req := remote.WriteRequest{Timeseries: make([]remote.WriteSeries, tsbs.SeriesPerHost)}
		for si := range req.Timeseries {
			lm := map[string]string{}
			for _, l := range h.SeriesLabels(si) {
				lm[l.Name] = l.Value
			}
			req.Timeseries[si] = remote.WriteSeries{Labels: lm, Samples: []remote.Sample{{T: 0, V: 0}}}
		}
		resp, err := client.Write(req)
		if err != nil {
			return nil, fmt.Errorf("slo: register host %d: %w", hi, err)
		}
		ids[hi] = resp.IDs
	}

	var (
		curT       atomic.Int64 // newest ingested round timestamp
		writeLats  []time.Duration
		writeErrs  int
		queryMu    sync.Mutex
		queryLats  []time.Duration
		queryErrs  int
		querySkips int64 // demand the worker pool could not absorb in time
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ingest: one writer paced by a ticker, each tick one shared-timestamp
	// round across every series (the TSBS fast-path shape).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(cfg.Seed))
		tick := time.NewTicker(time.Second / time.Duration(cfg.SLOIngestRate))
		defer tick.Stop()
		ts := int64(0)
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			ts += cfg.SampleIntervalMs
			req := remote.FastWriteRequest{}
			for hi := range ids {
				for _, id := range ids[hi] {
					req.Entries = append(req.Entries, remote.FastWriteEntry{
						ID:      id,
						Samples: []remote.Sample{{T: ts, V: math.Sin(float64(ts)/1e3) + rnd.Float64()}},
					})
				}
			}
			start := time.Now()
			if err := client.WriteFast(req); err != nil {
				writeErrs++
				continue
			}
			writeLats = append(writeLats, time.Since(start))
			curT.Store(ts)
		}
	}()

	// Queries: a ticker feeds a small worker pool; a full queue counts as a
	// skipped query rather than blocking the pacer (open-loop arrivals).
	queryJobs := make(chan int64, 2*cfg.SLOQueryRate)
	const queryWorkers = 4
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for range queryJobs {
				maxT := curT.Load()
				minT := maxT - cfg.HourMs
				if minT < 0 {
					minT = 0
				}
				host := hosts[rnd.Intn(len(hosts))]
				start := time.Now()
				_, err := client.Query(remote.QueryRequest{
					MinT: minT, MaxT: maxT,
					Matchers: []remote.MatcherSpec{{Type: "=", Name: "hostname", Value: host.Hostname()}},
				})
				d := time.Since(start)
				queryMu.Lock()
				if err != nil {
					queryErrs++
				} else {
					queryLats = append(queryLats, d)
				}
				queryMu.Unlock()
			}
		}(cfg.Seed + int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(queryJobs)
		tick := time.NewTicker(time.Second / time.Duration(cfg.SLOQueryRate))
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				select {
				case queryJobs <- 1:
				default:
					atomic.AddInt64(&querySkips, 1)
				}
			}
		}
	}()

	time.Sleep(cfg.SLODuration)
	close(stop)
	wg.Wait()

	if len(writeLats) == 0 || len(queryLats) == 0 {
		return nil, fmt.Errorf("slo: no completed requests (writes=%d/%d errs, queries=%d/%d errs)",
			len(writeLats), writeErrs, len(queryLats), queryErrs)
	}

	// Server-side percentiles come from the same /metrics endpoint an
	// external scraper would use, not from in-process registry access.
	metricsText, err := httpGetBody(srv.URL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("slo: scrape /metrics: %w", err)
	}
	appendP50, appendP99, appendCount := scrapeHistogram(metricsText, "timeunion_db_append_seconds")
	srvQueryP50, srvQueryP99, srvQueryCount := scrapeHistogram(metricsText, "timeunion_db_query_seconds")
	if appendCount == 0 || srvQueryCount == 0 {
		return nil, fmt.Errorf("slo: scraped histograms empty (append=%d query=%d observations)", appendCount, srvQueryCount)
	}

	// The operational surface is part of the contract: the run must have
	// journaled its background work and must render a live tree.
	kinds, err := scrapeEventKinds(srv.URL)
	if err != nil {
		return nil, fmt.Errorf("slo: scrape /api/v1/events: %w", err)
	}
	snap, err := scrapeTree(srv.URL)
	if err != nil {
		return nil, fmt.Errorf("slo: scrape /api/v1/lsmtree: %w", err)
	}

	r := newReport("slo", "Sustained-load SLO harness", "objective", "p50", "p99", "threshold", "verdict")
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	type objective struct {
		name     string
		p50, p99 float64 // ms
		limit    float64 // ms
	}
	objectives := []objective{
		{"client write_fast round-trip", ms(pct(writeLats, 0.50)), ms(pct(writeLats, 0.99)), cfg.SLOWriteP99Ms},
		{"client query round-trip", ms(pct(queryLats, 0.50)), ms(pct(queryLats, 0.99)), cfg.SLOQueryP99Ms},
		{"server db append (scraped)", appendP50 * 1e3, appendP99 * 1e3, cfg.SLOWriteP99Ms},
		{"server db query (scraped)", srvQueryP50 * 1e3, srvQueryP99 * 1e3, cfg.SLOQueryP99Ms},
	}
	var failed []string
	for _, o := range objectives {
		verdict := "PASS"
		if o.p99 > o.limit {
			verdict = "FAIL"
			failed = append(failed, o.name)
		}
		r.addRow(o.name, fmt.Sprintf("%.3fms", o.p50), fmt.Sprintf("%.3fms", o.p99),
			fmt.Sprintf("%.0fms", o.limit), verdict)
		key := strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(o.name)
		r.Values[key+"_p50_ms"] = o.p50
		r.Values[key+"_p99_ms"] = o.p99
	}
	r.Values["write_requests"] = float64(len(writeLats))
	r.Values["query_requests"] = float64(len(queryLats))
	r.Values["write_errors"] = float64(writeErrs)
	r.Values["query_errors"] = float64(queryErrs)
	r.Values["query_skips"] = float64(atomic.LoadInt64(&querySkips))
	r.Values["journal_kinds"] = float64(len(kinds))
	r.Values["slo_pass"] = 1

	r.note("load: %v at %d write rounds/s (%d series each) + %d queries/s over %d workers",
		cfg.SLODuration, cfg.SLOIngestRate, cfg.Hosts*tsbs.SeriesPerHost, cfg.SLOQueryRate, queryWorkers)
	r.note("achieved: %d write rounds (%d errs), %d queries (%d errs, %d skipped at full queue)",
		len(writeLats), writeErrs, len(queryLats), queryErrs, atomic.LoadInt64(&querySkips))
	kindList := make([]string, 0, len(kinds))
	for k, n := range kinds {
		kindList = append(kindList, fmt.Sprintf("%s:%d", k, n))
	}
	sort.Strings(kindList)
	r.note("journal: %s", strings.Join(kindList, " "))
	for _, lvl := range snap.Levels {
		r.note("tree L%d (%s): %d partitions, %d tables, %s", lvl.Level, lvl.Tier,
			len(lvl.Partitions), lvl.Tables, fmtBytes(lvl.Size))
	}
	r.setMetrics("TU", db.Metrics().Snapshot())

	if len(failed) > 0 {
		r.Values["slo_pass"] = 0
		return r, fmt.Errorf("slo: p99 objectives failed: %s", strings.Join(failed, "; "))
	}
	return r, nil
}

// pct returns the q-quantile of ds by nearest-rank.
func pct(ds []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// httpGetBody fetches a URL and returns its body as text.
func httpGetBody(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String(), sc.Err()
}

// scrapeHistogram computes p50/p99 (in seconds) and the observation count
// for one histogram from Prometheus text exposition, walking its
// cumulative le buckets the way a PromQL histogram_quantile would.
func scrapeHistogram(text, name string) (p50, p99 float64, count uint64) {
	type bucket struct {
		le  float64
		cum uint64
	}
	var buckets []bucket
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+"_bucket{")
		if !ok {
			continue
		}
		i := strings.Index(rest, `le="`)
		if i < 0 {
			continue
		}
		leStr := rest[i+len(`le="`):]
		j := strings.Index(leStr, `"`)
		if j < 0 {
			continue
		}
		cumStr := strings.TrimSpace(rest[strings.Index(rest, "} ")+2:])
		cum, err := strconv.ParseUint(cumStr, 10, 64)
		if err != nil {
			continue
		}
		le := math.Inf(1)
		if leStr[:j] != "+Inf" {
			le, err = strconv.ParseFloat(leStr[:j], 64)
			if err != nil {
				continue
			}
		}
		buckets = append(buckets, bucket{le: le, cum: cum})
	}
	if len(buckets) == 0 {
		return 0, 0, 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	count = buckets[len(buckets)-1].cum
	quantile := func(q float64) float64 {
		rank := uint64(math.Ceil(q * float64(count)))
		for i, b := range buckets {
			if b.cum >= rank {
				if math.IsInf(b.le, 1) && i > 0 {
					return buckets[i-1].le // +Inf resolves to the last finite bound
				}
				return b.le
			}
		}
		return buckets[len(buckets)-1].le
	}
	return quantile(0.50), quantile(0.99), count
}

// scrapeEventKinds reads /api/v1/events and tallies events by kind.
func scrapeEventKinds(baseURL string) (map[string]int, error) {
	body, err := httpGetBody(baseURL + "/api/v1/events")
	if err != nil {
		return nil, err
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		var e struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("bad NDJSON line %q: %w", line, err)
		}
		kinds[e.Kind]++
	}
	return kinds, nil
}

// scrapeTree reads /api/v1/lsmtree into a TreeSnapshot.
func scrapeTree(baseURL string) (lsm.TreeSnapshot, error) {
	var snap lsm.TreeSnapshot
	body, err := httpGetBody(baseURL + "/api/v1/lsmtree")
	if err != nil {
		return snap, err
	}
	err = json.Unmarshal([]byte(body), &snap)
	return snap, err
}
