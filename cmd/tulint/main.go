// Command tulint runs TimeUnion's project-invariant static-analysis suite
// (internal/lint, DESIGN.md §4.9) over the module from source — no
// external tooling, just go/parser and go/types.
//
// Usage:
//
//	tulint [flags] [patterns...]
//
//	tulint ./...                  # whole module (the make lint gate)
//	tulint ./internal/wal         # one package
//	tulint -only errwrap ./...    # one analyzer
//	tulint -json ./...            # machine-readable, archived by CI
//	tulint -list                  # analyzer catalogue
//	tulint -timing -budget 60 ./...  # per-analyzer wall time, fail if >60s
//
// Exit status: 0 when no unsuppressed findings, 1 when findings remain,
// 2 on usage or load errors. Findings are suppressed line-by-line with
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"timeunion/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON (includes suppressed findings and timings)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		only    = flag.String("only", "", "comma-separated analyzer subset to run")
		dir     = flag.String("dir", ".", "directory inside the target module")
		module  = flag.String("module", "", "module path override (default: read from go.mod)")
		timing  = flag.Bool("timing", false, "report per-analyzer wall time to stderr")
		budget  = flag.Float64("budget", 0, "fail if the analysis (load + analyzers) exceeds this many seconds (0 disables)")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "tulint: unknown analyzer %q (see tulint -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	var root, modPath string
	if *module != "" {
		// Explicit module override: treat -dir itself as the module root
		// (used to run the suite over fixture trees without a go.mod).
		modPath = *module
		var err error
		if root, err = filepath.Abs(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "tulint: %v\n", err)
			return 2
		}
	} else {
		var err error
		if root, modPath, err = lint.FindModule(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "tulint: %v\n", err)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadStart := time.Now()
	pkgs, err := lint.NewLoader(root, modPath).Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tulint: %v\n", err)
		return 2
	}
	loadTime := time.Since(loadStart)

	diags, timings := lint.RunTimed(root, pkgs, analyzers)
	failing := lint.Unsuppressed(diags)

	// The load (parse + type-check) dominates wall time, so the budget and
	// the timing report both account for it explicitly.
	timings = append([]lint.Timing{{Analyzer: "load", Duration: loadTime, Millis: float64(loadTime.Microseconds()) / 1e3}}, timings...)
	var total time.Duration
	for _, tm := range timings {
		total += tm.Duration
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "tulint: %-12s %8.1fms\n", tm.Analyzer, tm.Millis)
		}
		fmt.Fprintf(os.Stderr, "tulint: %-12s %8.1fms\n", "total", float64(total.Microseconds())/1e3)
	}
	overBudget := *budget > 0 && total > time.Duration(*budget*float64(time.Second))
	if overBudget {
		fmt.Fprintf(os.Stderr, "tulint: analysis took %.1fs, over the %.0fs budget\n", total.Seconds(), *budget)
	}

	if *jsonOut {
		out := struct {
			Module      string            `json:"module"`
			Analyzers   []string          `json:"analyzers"`
			Packages    int               `json:"packages"`
			Findings    int               `json:"findings"`
			Suppressed  int               `json:"suppressed"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
			Timings     []lint.Timing     `json:"timings"`
		}{
			Module:      modPath,
			Analyzers:   []string{},
			Packages:    len(pkgs),
			Findings:    len(failing),
			Suppressed:  len(diags) - len(failing),
			Diagnostics: diags,
			Timings:     timings,
		}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		for _, a := range analyzers {
			out.Analyzers = append(out.Analyzers, a.Name)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "tulint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range failing {
			fmt.Println(d)
		}
		if len(failing) > 0 {
			fmt.Fprintf(os.Stderr, "tulint: %d finding(s) in %d package(s)\n", len(failing), len(pkgs))
		}
	}
	if len(failing) > 0 || overBudget {
		return 1
	}
	return 0
}
