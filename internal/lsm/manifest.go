package lsm

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"time"

	"timeunion/internal/cloud"
)

// This file implements the versioned manifest: a small CRC-guarded record
// on each tier's store naming the live tables of that tier. The manifest
// swap is the single atomic commit point for flushes and compactions
// (DESIGN.md §4.11) — a crash between writing output tables and deleting
// input tables leaves either the old or the new manifest version fully
// intact, and recovery garbage-collects whatever the surviving version
// does not reference. Pre-manifest trees (no manifest object present) fall
// back to the original listing-based recovery, then write their first
// manifest, so upgrades are transparent.

const (
	// manifestMagic is the first line of every manifest record.
	manifestMagic = "timeunion-manifest v1"
	// manifestFastPrefix/manifestSlowPrefix keep the two tiers' manifests
	// distinct even when Slow == Fast (the EBS-only configuration).
	manifestFastPrefix = "manifest/fast/"
	manifestSlowPrefix = "manifest/slow/"
)

// errManifestCorrupt marks a manifest object whose CRC or structure is
// invalid — a torn write of the newest version. Older versions stay
// trustworthy; loadManifest falls back to them.
var errManifestCorrupt = errors.New("lsm: manifest corrupt")

// castagnoli is the CRC polynomial used by the manifest (same family the
// WAL uses for its record guard).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// manifest is one decoded manifest version.
type manifest struct {
	version uint64
	nextSeq uint64
	r1, r2  int64
	// tables are the live table keys on this tier, sorted.
	tables []string
	// tombstones name fast-tier tables logically deleted by an L1→L2
	// compaction whose fast-manifest write has not landed yet. Only the
	// slow manifest carries them; recovery subtracts them from the fast
	// table set so a crash between the slow and fast commits cannot
	// resurrect compacted-away L1 inputs (which would double their data).
	tombstones []string
}

// manifestKey builds the object key for version v under prefix.
func manifestKey(prefix string, v uint64) string {
	return fmt.Sprintf("%s%020d", prefix, v)
}

// manifestVersionOf parses the version out of a manifest object key.
func manifestVersionOf(prefix, key string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(key, prefix), 10, 64)
}

// encodeManifest renders m as the line-oriented text record with a
// trailing CRC over every preceding byte.
func encodeManifest(m *manifest) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", manifestMagic)
	fmt.Fprintf(&b, "version %d\n", m.version)
	fmt.Fprintf(&b, "nextseq %d\n", m.nextSeq)
	fmt.Fprintf(&b, "r1 %d\n", m.r1)
	fmt.Fprintf(&b, "r2 %d\n", m.r2)
	for _, k := range m.tables {
		fmt.Fprintf(&b, "table %s\n", k)
	}
	for _, k := range m.tombstones {
		fmt.Fprintf(&b, "tombstone %s\n", k)
	}
	body := b.String()
	return []byte(fmt.Sprintf("%scrc %08x\n", body, crc32.Checksum([]byte(body), castagnoli)))
}

// decodeManifest parses and CRC-checks a manifest record. Any structural
// or checksum failure returns errManifestCorrupt: the caller treats the
// object as a torn newest version and falls back to an older one.
func decodeManifest(data []byte) (*manifest, error) {
	text := string(data)
	idx := strings.LastIndex(text, "\ncrc ")
	if idx < 0 {
		return nil, errManifestCorrupt
	}
	body := text[:idx+1] // include the newline the CRC line follows
	var want uint32
	if _, err := fmt.Sscanf(text[idx+1:], "crc %08x", &want); err != nil {
		return nil, errManifestCorrupt
	}
	if crc32.Checksum([]byte(body), castagnoli) != want {
		return nil, errManifestCorrupt
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestMagic {
		return nil, errManifestCorrupt
	}
	m := &manifest{}
	for _, line := range lines[1:] {
		field, value, ok := strings.Cut(line, " ")
		if !ok {
			return nil, errManifestCorrupt
		}
		var err error
		switch field {
		case "version":
			m.version, err = strconv.ParseUint(value, 10, 64)
		case "nextseq":
			m.nextSeq, err = strconv.ParseUint(value, 10, 64)
		case "r1":
			m.r1, err = strconv.ParseInt(value, 10, 64)
		case "r2":
			m.r2, err = strconv.ParseInt(value, 10, 64)
		case "table":
			m.tables = append(m.tables, value)
		case "tombstone":
			m.tombstones = append(m.tombstones, value)
		default:
			err = errManifestCorrupt
		}
		if err != nil {
			return nil, errManifestCorrupt
		}
	}
	return m, nil
}

// loadManifest reads the newest decodable manifest version under prefix.
// It returns nil (with no error) when no manifest object exists at all —
// a pre-manifest tree. stale lists every manifest key that is NOT the
// chosen version (older versions and torn newer ones), for GC.
//
// A Get failure on a listed key is a hard error, never a fallback: the key
// was durably written, so skipping it could silently recover an older
// version and GC newer committed tables — data loss. Only a CRC/structure
// failure (a torn write that never committed) falls back.
func loadManifest(store cloud.Store, prefix string) (m *manifest, stale []string, err error) {
	keys, err := store.List(prefix)
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: manifest list %s: %w", prefix, err)
	}
	sort.Strings(keys) // versions are fixed-width decimals: oldest first
	for i := len(keys) - 1; i >= 0; i-- {
		if m != nil {
			stale = append(stale, keys[i])
			continue
		}
		data, err := store.Get(keys[i])
		if err != nil {
			return nil, nil, fmt.Errorf("lsm: manifest read %s: %w", keys[i], err)
		}
		dm, err := decodeManifest(data)
		if err != nil {
			// Torn newest version: never committed, fall back.
			stale = append(stale, keys[i])
			continue
		}
		if v, err := manifestVersionOf(prefix, keys[i]); err != nil || v != dm.version {
			stale = append(stale, keys[i])
			continue
		}
		m = dm
	}
	return m, stale, nil
}

// liveTableKeysLocked snapshots the live table keys per tier, sorted.
// Caller holds l.mu (read or write).
func (l *LSM) liveTableKeysLocked() (fastKeys, slowKeys []string) {
	for _, lvl := range [][]*partition{l.l0, l.l1} {
		for _, p := range lvl {
			for _, h := range allTables(p) {
				fastKeys = append(fastKeys, h.storeKey)
			}
		}
	}
	for _, p := range l.l2 {
		for _, h := range allTables(p) {
			slowKeys = append(slowKeys, h.storeKey)
		}
	}
	sort.Strings(fastKeys)
	sort.Strings(slowKeys)
	return fastKeys, slowKeys
}

// commitManifests durably publishes the current in-memory table set:
// writeFast commits the fast tier (L0+L1), writeSlow the slow tier (L2).
// fastTombstones name fast tables logically deleted by this edit; they
// ride in the slow manifest until the next fast manifest lands (see the
// manifest struct). The slow Put is the atomic point of a cross-tier
// commit; the fast Put follows under the same manifestMu so the two can
// never interleave with another committer's pair.
//
// Lock order: manifestMu first, then l.mu (read) for the snapshot. Callers
// must not hold l.mu.
func (l *LSM) commitManifests(writeFast, writeSlow bool, fastTombstones []string) (err error) {
	l.manifestMu.Lock()
	defer l.manifestMu.Unlock()

	l.mu.RLock()
	fastKeys, slowKeys := l.liveTableKeysLocked()
	r1, r2 := l.r1, l.r2
	l.mu.RUnlock()
	nextSeq := l.fileSeq.Load()

	// Accumulate tombstones before any write: if the slow Put lands and the
	// fast Put fails, the next slow commit must still carry them.
	l.pendingTombs = append(l.pendingTombs, fastTombstones...)

	start := time.Now()
	tombs := len(l.pendingTombs)
	defer func() {
		if j := l.opts.Journal; j != nil {
			j.Emit("lsm.manifest_commit", start, err, map[string]any{
				"fast":         writeFast,
				"slow":         writeSlow,
				"version_fast": l.mfFastVer.Load(),
				"version_slow": l.mfSlowVer.Load(),
				"tables_fast":  len(fastKeys),
				"tables_slow":  len(slowKeys),
				"tombstones":   tombs,
			})
		}
	}()

	if writeSlow {
		v := l.mfSlowVer.Load() + 1
		m := &manifest{version: v, nextSeq: nextSeq, r1: r1, r2: r2,
			tables: slowKeys, tombstones: append([]string(nil), l.pendingTombs...)}
		key := manifestKey(manifestSlowPrefix, v)
		if err := l.opts.Slow.Put(key, encodeManifest(m)); err != nil {
			return fmt.Errorf("lsm: commit slow manifest: %w", err)
		}
		l.mfSlowVer.Store(v)
		if v > 1 {
			// Best effort: a stale version left behind is GC'd at recovery.
			_ = l.opts.Slow.Delete(manifestKey(manifestSlowPrefix, v-1))
		}
	}
	if writeFast {
		v := l.mfFastVer.Load() + 1
		m := &manifest{version: v, nextSeq: nextSeq, r1: r1, r2: r2, tables: fastKeys}
		key := manifestKey(manifestFastPrefix, v)
		if err := l.opts.Fast.Put(key, encodeManifest(m)); err != nil {
			return fmt.Errorf("lsm: commit fast manifest: %w", err)
		}
		l.mfFastVer.Store(v)
		// The fast manifest now authoritatively excludes every tombstoned
		// table, so the tombstones have served their purpose.
		l.pendingTombs = nil
		if v > 1 {
			_ = l.opts.Fast.Delete(manifestKey(manifestFastPrefix, v-1))
		}
	}
	l.stats.manifestCommits.Add(1)
	return nil
}

// Orphans lists every object under the data and manifest prefixes that the
// live tree does not reference: stranded compaction outputs, undeleted
// inputs, and stale manifest versions. Recovery GC keeps this empty; the
// torture harness asserts it.
func (l *LSM) Orphans() ([]string, error) {
	l.manifestMu.Lock()
	defer l.manifestMu.Unlock()
	l.mu.RLock()
	fastKeys, slowKeys := l.liveTableKeysLocked()
	l.mu.RUnlock()

	live := map[string]bool{
		manifestKey(manifestFastPrefix, l.mfFastVer.Load()): true,
		manifestKey(manifestSlowPrefix, l.mfSlowVer.Load()): true,
	}
	for _, k := range fastKeys {
		live[k] = true
	}
	for _, k := range slowKeys {
		live[k] = true
	}

	var orphans []string
	scan := func(store cloud.Store, prefixes ...string) error {
		for _, prefix := range prefixes {
			keys, err := store.List(prefix)
			if err != nil {
				return err
			}
			for _, k := range keys {
				if !live[k] {
					orphans = append(orphans, k)
				}
			}
		}
		return nil
	}
	if err := scan(l.opts.Fast, "l0/", "l1/", manifestFastPrefix); err != nil {
		return nil, err
	}
	if err := scan(l.opts.Slow, "l2/", manifestSlowPrefix); err != nil {
		return nil, err
	}
	sort.Strings(orphans)
	return orphans, nil
}
