package lint

import (
	"go/ast"
)

// ErrWrap enforces the durability-path error discipline (DESIGN.md §4.6)
// in internal/{wal,lsm,cloud,sstable}:
//
//   - Errors crossing a package boundary must stay classifiable:
//     fmt.Errorf must wrap error operands with %w (or the caller must use
//     a typed error), never flatten them through %v/%s — flattening breaks
//     errors.As, errors.Is, and cloud.IsTransient retry classification.
//   - Sync/Close on the write path return the error that tells us whether
//     bytes reached the device; silently discarding it (bare call
//     statement or bare defer) voids the fsync discipline. Assigning to _
//     is the explicit, auditable way to drop one deliberately.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "durability packages must wrap errors with %w and must not silently discard Sync/Close errors",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	if !pass.InScope("internal/wal", "internal/lsm", "internal/cloud", "internal/sstable") {
		return
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorfVerbs(pass, n)
		case *ast.ExprStmt:
			checkDiscardedCall(pass, n.X, "")
		case *ast.DeferStmt:
			checkDiscardedCall(pass, n.Call, "defer ")
		case *ast.GoStmt:
			checkDiscardedCall(pass, n.Call, "go ")
		}
		return true
	})
}

// checkErrorfVerbs flags fmt.Errorf calls that format an error operand
// with a verb other than %w.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr) {
	if name, ok := calleeFromPkg(pass.Info, call, "fmt"); !ok || name != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return // dynamic format string; nothing to check
	}
	format, err := unquoteConst(tv.Value)
	if err != nil {
		return
	}
	verbs, clean := formatVerbs(format)
	if !clean {
		return
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) || verb == 'w' {
			continue
		}
		arg := call.Args[argIdx]
		if isErrorType(pass.Info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error operand formatted with %%%c; use %%w so errors.As/Is and transient-fault classification survive the package boundary", verb)
		}
	}
}

// checkDiscardedCall flags bare x.Sync()/x.Close() statements whose error
// result is implicitly dropped.
func checkDiscardedCall(pass *Pass, expr ast.Expr, prefix string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Sync" && name != "Close" {
		return
	}
	sig := signatureOf(pass, call)
	if sig == nil || sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "%s%s() error discarded in a durability path; check it, return it, or assign to _ explicitly", prefix, name)
}
