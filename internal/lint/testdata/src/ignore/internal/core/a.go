// Package core exercises lint:ignore suppression semantics.
package core

import "context"

func run(ctx context.Context) error { return ctx.Err() }

func directiveAbove(ctx context.Context) error {
	//lint:ignore ctxflow detached audit job must outlive the request
	return run(context.Background())
}

func directiveTrailing(ctx context.Context) error {
	return run(context.TODO()) //lint:ignore ctxflow migration shim until callers thread ctx
}

func missingReason(ctx context.Context) error {
	//lint:ignore ctxflow
	return run(context.Background())
}

func unsuppressed(ctx context.Context) error {
	return run(context.Background())
}

func wrongAnalyzer(ctx context.Context) error {
	//lint:ignore errwrap reason aimed at a different analyzer
	return run(context.Background())
}
