package cloud

import (
	"fmt"
	"testing"
	"time"
)

// storeImpls builds one store of each implementation for table-driven tests.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	dir, err := NewDirStore(t.TempDir(), TierObject, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem": NewMemStore(TierBlock, LatencyModel{}),
		"dir": dir,
	}
}

func TestStoreBasicOps(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("a/b/key1", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("a/b/key2", []byte("world!")); err != nil {
				t.Fatal(err)
			}
			d, err := s.Get("a/b/key1")
			if err != nil || string(d) != "hello" {
				t.Fatalf("Get = %q, %v", d, err)
			}
			if _, err := s.Get("missing"); !IsNotFound(err) {
				t.Fatalf("Get(missing) err = %v", err)
			}
			n, err := s.Size("a/b/key2")
			if err != nil || n != 6 {
				t.Fatalf("Size = %d, %v", n, err)
			}
			if _, err := s.Size("missing"); !IsNotFound(err) {
				t.Fatalf("Size(missing) err = %v", err)
			}
			if got := s.TotalBytes(); got != 11 {
				t.Fatalf("TotalBytes = %d", got)
			}

			keys, err := s.List("a/b/")
			if err != nil || len(keys) != 2 || keys[0] != "a/b/key1" {
				t.Fatalf("List = %v, %v", keys, err)
			}
			keys, err = s.List("zzz")
			if err != nil || len(keys) != 0 {
				t.Fatalf("List(zzz) = %v, %v", keys, err)
			}

			// Overwrite adjusts total.
			if err := s.Put("a/b/key1", []byte("hi")); err != nil {
				t.Fatal(err)
			}
			if got := s.TotalBytes(); got != 8 {
				t.Fatalf("TotalBytes after overwrite = %d", got)
			}

			if err := s.Delete("a/b/key1"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("a/b/key1"); !IsNotFound(err) {
				t.Fatal("key survived delete")
			}
			if got := s.TotalBytes(); got != 6 {
				t.Fatalf("TotalBytes after delete = %d", got)
			}
			if err := s.Delete("missing"); err != nil {
				t.Fatalf("Delete(missing) = %v", err)
			}
		})
	}
}

func TestStoreGetRange(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("k", []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			d, err := s.GetRange("k", 2, 4)
			if err != nil || string(d) != "2345" {
				t.Fatalf("GetRange = %q, %v", d, err)
			}
			// Range beyond end is truncated.
			d, err = s.GetRange("k", 8, 100)
			if err != nil || string(d) != "89" {
				t.Fatalf("GetRange(end) = %q, %v", d, err)
			}
			if _, err := s.GetRange("missing", 0, 1); !IsNotFound(err) {
				t.Fatalf("GetRange(missing) err = %v", err)
			}
			// Negative offset or length must error, not panic (a corrupt
			// footer can feed garbage offsets to the reader).
			if _, err := s.GetRange("k", -1, 4); err == nil {
				t.Fatal("GetRange(off=-1) succeeded")
			}
			if _, err := s.GetRange("k", 2, -4); err == nil {
				t.Fatal("GetRange(len=-4) succeeded")
			}
			if _, err := s.GetRange("k", 100, 4); err == nil {
				t.Fatal("GetRange(off past end) succeeded")
			}
		})
	}
}

func TestStoreStats(t *testing.T) {
	s := NewMemStore(TierObject, S3Model(0))
	if err := s.Put("k", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRange("k", 0, 100); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != 1000 || st.BytesRead != 1100 {
		t.Fatalf("bytes = %+v", st)
	}
	if st.SimReadTime < 2*15*time.Millisecond {
		t.Fatalf("SimReadTime = %v, want >= 2 per-op latencies", st.SimReadTime)
	}
	s.ResetStats()
	if st := s.Stats(); st.Gets != 0 || st.BytesRead != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestLatencyModelShape(t *testing.T) {
	ebs := EBSModel(0)
	s3 := S3Model(0)
	// Per-request dominated: a 4KB S3 read must be orders of magnitude
	// slower than a 4KB EBS read (Figure 1c).
	if r := float64(s3.readLatency(4096)) / float64(ebs.readLatency(4096)); r < 20 {
		t.Fatalf("S3/EBS 4KB read ratio = %.1f, want >= 20", r)
	}
	// Bandwidth-dominated: at 32MB the gap narrows to single digits
	// (Figure 1b: "EBS is still 3x faster than S3 for 32MB write").
	r := float64(s3.writeLatency(32<<20)) / float64(ebs.writeLatency(32<<20))
	if r < 2 || r > 10 {
		t.Fatalf("S3/EBS 32MB write ratio = %.1f, want in [2,10]", r)
	}
}

func TestLatencyModelSleepScaling(t *testing.T) {
	// TimeScale=0 must not sleep at all.
	m := LatencyModel{ReadPerOp: time.Hour}
	start := time.Now()
	m.sleep(m.readLatency(0))
	if time.Since(start) > time.Second {
		t.Fatal("TimeScale=0 slept")
	}
	// A large TimeScale shrinks the sleep proportionally.
	m2 := LatencyModel{ReadPerOp: 100 * time.Millisecond, TimeScale: 1000}
	start = time.Now()
	m2.sleep(m2.readLatency(0))
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("scaled sleep took %v", el)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Gets: 1, Puts: 2, BytesRead: 10, SimReadTime: time.Second}
	b := Stats{Gets: 3, Deletes: 1, BytesWritten: 5, SimWriteTime: time.Minute}
	c := a.Add(b)
	if c.Gets != 4 || c.Puts != 2 || c.Deletes != 1 || c.BytesRead != 10 ||
		c.BytesWritten != 5 || c.SimReadTime != time.Second || c.SimWriteTime != time.Minute {
		t.Fatalf("Add = %+v", c)
	}
}

func TestDirStoreReopenRecomputesTotal(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir, TierBlock, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("x/y", make([]byte, 123)); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDirStore(dir, TierBlock, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.TotalBytes() != 123 {
		t.Fatalf("reopened TotalBytes = %d", s2.TotalBytes())
	}
}

func TestLRUCache(t *testing.T) {
	c := NewLRUCache(100)
	c.Put("a", make([]byte, 40))
	c.Put("b", make([]byte, 40))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// Inserting c (40B) exceeds capacity; LRU is b (a was just touched).
	c.Put("c", make([]byte, 40))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be cached")
	}
	if used := c.UsedBytes(); used != 80 {
		t.Fatalf("UsedBytes = %d", used)
	}
	hits, misses := c.HitRate()
	if hits != 3 || misses != 1 {
		t.Fatalf("hit rate = %d/%d", hits, misses)
	}
}

func TestLRUCacheOversizedAndInvalidate(t *testing.T) {
	c := NewLRUCache(10)
	c.Put("big", make([]byte, 11)) // larger than capacity: not cached
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized entry cached")
	}
	c.Put("k", make([]byte, 5))
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated entry still cached")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("UsedBytes = %d", c.UsedBytes())
	}
	c.Invalidate("never-existed") // no-op
}

func TestLRUCacheUpdateExisting(t *testing.T) {
	c := NewLRUCache(100)
	c.Put("k", make([]byte, 10))
	c.Put("k", make([]byte, 60))
	if c.UsedBytes() != 60 {
		t.Fatalf("UsedBytes after update = %d", c.UsedBytes())
	}
	d, ok := c.Get("k")
	if !ok || len(d) != 60 {
		t.Fatalf("Get after update = %d bytes, %v", len(d), ok)
	}
}

func TestZeroCapacityCache(t *testing.T) {
	c := NewLRUCache(0)
	c.Put("k", []byte("x"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-capacity cache stored data")
	}
}

func TestMonthlyCost(t *testing.T) {
	const gb = 1 << 30
	// 1GB on each tier: RAM must dominate, then EBS ~4x S3.
	ram := MonthlyCostUSD(0, 0, gb)
	ebs := MonthlyCostUSD(gb, 0, 0)
	s3 := MonthlyCostUSD(0, gb, 0)
	if ebs/s3 < 3 || ebs/s3 > 5 {
		t.Fatalf("EBS/S3 price ratio = %.2f", ebs/s3)
	}
	if ram/ebs < 100 {
		t.Fatalf("RAM/EBS price ratio = %.0f, want >= 100", ram/ebs)
	}
	total := MonthlyCostUSD(gb, gb, gb)
	if want := ram + ebs + s3; total != want {
		t.Fatalf("total = %f, want %f", total, want)
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewMemStore(TierBlock, LatencyModel{})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d/k%d", g, i)
				if err := s.Put(key, []byte{byte(i)}); err != nil {
					done <- err
					return
				}
				if _, err := s.Get(key); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s.TotalBytes() != 8*200 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
}

// TestDirStoreConcurrentOverwriteTotal hammers one key from many goroutines
// with different payload sizes. Stat-and-update races used to let TotalBytes
// drift; it must end exactly at the final object's size.
func TestDirStoreConcurrentOverwriteTotal(t *testing.T) {
	s, err := NewDirStore(t.TempDir(), TierBlock, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if err := s.Put("shared", make([]byte, 1+(g*50+i)%97)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Size("shared")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalBytes(); got != n {
		t.Fatalf("TotalBytes = %d, object size = %d", got, n)
	}
}
