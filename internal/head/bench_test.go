package head

import (
	"fmt"
	"testing"

	"timeunion/internal/encoding"
	"timeunion/internal/labels"
)

func benchHead(b *testing.B) (*Head, []uint64) {
	b.Helper()
	h, err := New(Options{Sink: func(encoding.Key, []byte) error { return nil }})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { h.Close() })
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i], err = h.Append(labels.FromStrings(
			"measurement", "cpu", "field", fmt.Sprintf("f%d", i%10),
			"hostname", fmt.Sprintf("host_%d", i/10)), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	return h, ids
}

// BenchmarkAppendFast measures the §3.4 fast-path insert.
func BenchmarkAppendFast(b *testing.B) {
	h, ids := benchHead(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := h.AppendFast(ids[i%len(ids)], int64(i+1)*10, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSlow measures the §3.4 slow-path insert (tag comparison on
// every call).
func BenchmarkAppendSlow(b *testing.B) {
	h, _ := benchHead(b)
	ls := labels.FromStrings("measurement", "cpu", "field", "f1", "hostname", "host_1")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Append(ls, int64(i+1)*10, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendGroupFast measures one 101-member group round.
func BenchmarkAppendGroupFast(b *testing.B) {
	h, err := New(Options{Sink: func(encoding.Key, []byte) error { return nil }})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { h.Close() })
	uniques := make([]labels.Labels, 101)
	vals := make([]float64, 101)
	for i := range uniques {
		uniques[i] = labels.FromStrings("field", fmt.Sprintf("f%d", i))
	}
	gid, slots, err := h.AppendGroup(labels.FromStrings("hostname", "host_0"), uniques, 0, vals)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := h.AppendGroupFast(gid, slots, int64(i+1)*10, vals); err != nil {
			b.Fatal(err)
		}
	}
}
