package chunkenc

import (
	"fmt"
	"math"

	"timeunion/internal/encoding"
)

// GroupTimeChunk is a group's shared timestamp column (paper §3.1, Figure 7):
// timestamps are deduplicated across members and compressed delta-of-delta.
type GroupTimeChunk struct {
	w          *encoding.BitWriter
	numSamples int
	minT, maxT int64
	t          int64
	tDelta     int64
}

// NewGroupTimeChunk returns an empty shared timestamp column.
func NewGroupTimeChunk() *GroupTimeChunk {
	return NewGroupTimeChunkInto(make([]byte, 0, 64))
}

// NewGroupTimeChunkInto returns an empty column appending into buf (which
// must have zero length), e.g. a memory-mapped slot.
func NewGroupTimeChunkInto(buf []byte) *GroupTimeChunk {
	c := &GroupTimeChunk{w: encoding.NewBitWriter(buf)}
	c.w.WriteBits(0, 16)
	return c
}

// Encoding implements Chunk.
func (c *GroupTimeChunk) Encoding() Encoding { return EncGroupTime }

// NumSamples implements Chunk.
func (c *GroupTimeChunk) NumSamples() int { return c.numSamples }

// MinTime returns the first timestamp.
func (c *GroupTimeChunk) MinTime() int64 { return c.minT }

// MaxTime returns the last timestamp.
func (c *GroupTimeChunk) MaxTime() int64 { return c.maxT }

// Bytes implements Chunk. Read-only: the count header is maintained on
// every append.
func (c *GroupTimeChunk) Bytes() []byte {
	return c.w.Bytes()
}

func (c *GroupTimeChunk) setCount() {
	b := c.w.Bytes()
	b[0] = byte(c.numSamples >> 8)
	b[1] = byte(c.numSamples)
}

// Append adds a shared timestamp slot.
func (c *GroupTimeChunk) Append(t int64) error {
	switch c.numSamples {
	case 0:
		c.w.WriteBits(uint64(t), 64)
		c.minT = t
	case 1:
		delta := t - c.t
		if delta < 0 {
			return fmt.Errorf("chunkenc: out-of-order group timestamp %d after %d", t, c.t)
		}
		writeVarbitInt(c.w, delta)
		c.tDelta = delta
	default:
		delta := t - c.t
		if delta < 0 {
			return fmt.Errorf("chunkenc: out-of-order group timestamp %d after %d", t, c.t)
		}
		writeVarbitInt(c.w, delta-c.tDelta)
		c.tDelta = delta
	}
	c.t = t
	c.maxT = t
	c.numSamples++
	c.setCount()
	return nil
}

// Iterator returns a timestamp iterator.
func (c *GroupTimeChunk) Iterator() *GroupTimeIterator {
	return NewGroupTimeIterator(c.Bytes())
}

// GroupTimeIterator decodes an EncGroupTime payload.
type GroupTimeIterator struct {
	r        encoding.BitReader // by value: embeddable without a heap reader
	numTotal int
	numRead  int
	t        int64
	tDelta   int64
	err      error
}

// NewGroupTimeIterator returns an iterator over an encoded timestamp column.
func NewGroupTimeIterator(b []byte) *GroupTimeIterator {
	it := &GroupTimeIterator{}
	it.reset(b)
	return it
}

// reset re-points the iterator at payload b, reusing the embedded reader.
func (it *GroupTimeIterator) reset(b []byte) {
	*it = GroupTimeIterator{}
	if len(b) < sampleCountLen {
		it.err = encoding.ErrShortBuffer
		return
	}
	it.r.Reset(b[sampleCountLen:])
	it.numTotal = int(b[0])<<8 | int(b[1])
}

// Next advances to the next timestamp.
func (it *GroupTimeIterator) Next() bool {
	if it.err != nil || it.numRead >= it.numTotal {
		return false
	}
	switch it.numRead {
	case 0:
		it.t = int64(it.r.ReadBits(64))
	case 1:
		it.tDelta = readVarbitInt(&it.r)
		it.t += it.tDelta
	default:
		it.tDelta += readVarbitInt(&it.r)
		it.t += it.tDelta
	}
	if err := it.r.Err(); err != nil {
		it.err = err
		return false
	}
	it.numRead++
	return true
}

// At returns the current timestamp.
func (it *GroupTimeIterator) At() int64 { return it.t }

// Err returns the first decoding error.
func (it *GroupTimeIterator) Err() error { return it.err }

// GroupValueChunk is one group member's value column. The Gorilla XOR stream
// is extended with one control bit per slot (paper §3.1, insertion case 2):
// a 0 control bit records a NULL (member missing in that round); a 1 control
// bit is followed by the usual XOR encoding relative to the last non-NULL
// value.
type GroupValueChunk struct {
	w        *encoding.BitWriter
	numSlots int
	v        float64
	first    bool
	leading  uint8
	trailing uint8
}

// NewGroupValueChunk returns an empty value column.
func NewGroupValueChunk() *GroupValueChunk {
	return NewGroupValueChunkInto(make([]byte, 0, 64))
}

// NewGroupValueChunkInto returns an empty value column appending into buf
// (which must have zero length), e.g. a memory-mapped slot.
func NewGroupValueChunkInto(buf []byte) *GroupValueChunk {
	c := &GroupValueChunk{
		w:       encoding.NewBitWriter(buf),
		first:   true,
		leading: 0xff,
	}
	c.w.WriteBits(0, 16)
	return c
}

// Encoding implements Chunk.
func (c *GroupValueChunk) Encoding() Encoding { return EncGroupValues }

// NumSamples implements Chunk. NULL slots count.
func (c *GroupValueChunk) NumSamples() int { return c.numSlots }

// Bytes implements Chunk. Read-only: the count header is maintained on
// every append.
func (c *GroupValueChunk) Bytes() []byte {
	return c.w.Bytes()
}

func (c *GroupValueChunk) setCount() {
	b := c.w.Bytes()
	b[0] = byte(c.numSlots >> 8)
	b[1] = byte(c.numSlots)
}

// Append adds a present value for the next slot.
func (c *GroupValueChunk) Append(v float64) {
	c.w.WriteBit(true)
	if c.first {
		c.w.WriteBits(math.Float64bits(v), 64)
		c.first = false
	} else {
		c.leading, c.trailing = writeXORValue(c.w, c.v, v, c.leading, c.trailing)
	}
	c.v = v
	c.numSlots++
	c.setCount()
}

// AppendNull records a missing slot (paper §3.1, insertion case 3).
func (c *GroupValueChunk) AppendNull() {
	c.w.WriteBit(false)
	c.numSlots++
	c.setCount()
}

// Iterator returns a value iterator.
func (c *GroupValueChunk) Iterator() *GroupValueIterator {
	return NewGroupValueIterator(c.Bytes())
}

// GroupValueIterator decodes an EncGroupValues payload.
type GroupValueIterator struct {
	r        encoding.BitReader // by value: embeddable without a heap reader
	numTotal int
	numRead  int
	v        float64
	null     bool
	first    bool
	leading  uint8
	trailing uint8
	err      error
}

// NewGroupValueIterator returns an iterator over an encoded value column.
func NewGroupValueIterator(b []byte) *GroupValueIterator {
	it := &GroupValueIterator{}
	it.reset(b)
	return it
}

// reset re-points the iterator at payload b, reusing the embedded reader.
func (it *GroupValueIterator) reset(b []byte) {
	*it = GroupValueIterator{first: true, leading: 0xff}
	if len(b) < sampleCountLen {
		it.err = encoding.ErrShortBuffer
		return
	}
	it.r.Reset(b[sampleCountLen:])
	it.numTotal = int(b[0])<<8 | int(b[1])
}

// Next advances to the next slot.
func (it *GroupValueIterator) Next() bool {
	if it.err != nil || it.numRead >= it.numTotal {
		return false
	}
	if !it.r.ReadBit() {
		it.null = true
	} else {
		it.null = false
		if it.first {
			it.v = math.Float64frombits(it.r.ReadBits(64))
			it.first = false
		} else {
			it.v, it.leading, it.trailing = readXORValue(&it.r, it.v, it.leading, it.trailing)
		}
	}
	if err := it.r.Err(); err != nil {
		it.err = err
		return false
	}
	it.numRead++
	return true
}

// At returns the current slot's value and whether it is NULL.
func (it *GroupValueIterator) At() (v float64, null bool) { return it.v, it.null }

// Err returns the first decoding error.
func (it *GroupValueIterator) Err() error { return it.err }

// GroupTuple is the serialized unit a group inserts into the LSM when its
// current chunk fills (paper §3.1): the shared timestamp column concatenated
// with every member's value column, identified by member slot indexes.
type GroupTuple struct {
	Time   []byte   // EncGroupTime payload
	Slots  []uint32 // member slot indexes, parallel to Values
	Values [][]byte // EncGroupValues payloads
}

// Encode serializes the tuple.
func (g *GroupTuple) Encode(dst []byte) []byte {
	var b encoding.Buf
	b.B = dst
	b.PutUvarintBytes(g.Time)
	b.PutUvarint(uint64(len(g.Values)))
	for i, v := range g.Values {
		b.PutUvarint(uint64(g.Slots[i]))
		b.PutUvarintBytes(v)
	}
	return b.B
}

// DecodeGroupTuple parses a serialized group tuple.
func DecodeGroupTuple(p []byte) (*GroupTuple, error) {
	g := &GroupTuple{}
	if err := DecodeGroupTupleInto(g, p); err != nil {
		return nil, err
	}
	return g, nil
}

// DecodeGroupTupleInto parses a serialized group tuple into g, reusing its
// slice capacity — the scratch-friendly variant for hot loops that parse
// one tuple after another. The decoded Time and Values payloads alias p.
func DecodeGroupTupleInto(g *GroupTuple, p []byte) error {
	d := encoding.NewDecbuf(p)
	g.Time = d.UvarintBytes()
	n := d.Uvarint()
	if d.Err() != nil {
		return fmt.Errorf("chunkenc: decode group tuple: %w", d.Err())
	}
	g.Slots = g.Slots[:0]
	g.Values = g.Values[:0]
	for i := uint64(0); i < n; i++ {
		g.Slots = append(g.Slots, uint32(d.Uvarint()))
		g.Values = append(g.Values, d.UvarintBytes())
	}
	if d.Err() != nil {
		return fmt.Errorf("chunkenc: decode group tuple: %w", d.Err())
	}
	return nil
}
