package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"timeunion/internal/cloud"
	"timeunion/internal/labels"
)

// flakyDeleteStore fails every Delete while fail is set; everything else
// passes through to the wrapped store.
type flakyDeleteStore struct {
	cloud.Store
	fail atomic.Bool
}

func (s *flakyDeleteStore) Delete(key string) error {
	if s.fail.Load() {
		return errors.New("injected delete failure")
	}
	return s.Store.Delete(key)
}

// TestCatalogPruneKeepsNewestK: every publish prunes catalog objects down
// to the newest catalogKeepVersions, counts the prunes, survives failing
// deletes (the backlog just accumulates), and reclaims the whole backlog
// once deletes heal — so catalog storage is bounded even across delete
// outages.
func TestCatalogPruneKeepsNewestK(t *testing.T) {
	opts := testOpts("")
	flaky := &flakyDeleteStore{Store: opts.Fast}
	opts.Fast = flaky
	db := openTestDB(t, opts)

	listCatalog := func() []string {
		t.Helper()
		keys, err := flaky.List(catalogPrefix)
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(keys)
		return keys
	}
	// Each new series changes the catalog, so every Flush publishes a new
	// version.
	publish := func(i int) {
		t.Helper()
		if _, err := db.Append(labels.FromStrings("m", fmt.Sprintf("v%d", i)), int64(i+1), 1); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 6; i++ {
		publish(i)
	}
	keys := listCatalog()
	if len(keys) > catalogKeepVersions {
		t.Fatalf("after 6 publishes %d catalog objects remain, want at most %d: %v", len(keys), catalogKeepVersions, keys)
	}
	newest, err := catalogVersionOf(keys[len(keys)-1])
	if err != nil {
		t.Fatal(err)
	}
	if newest != db.catVer {
		t.Fatalf("newest surviving catalog version = %d, want the current %d", newest, db.catVer)
	}
	if db.m.catalogPruned.Value() == 0 {
		t.Error("catalogPruned counter never incremented")
	}

	// With deletes failing, publishing must still succeed; stale versions
	// pile up past the floor.
	flaky.fail.Store(true)
	for i := 6; i < 10; i++ {
		publish(i)
	}
	if n := len(listCatalog()); n <= catalogKeepVersions {
		t.Fatalf("expected stale versions to accumulate under failing deletes, have %d objects", n)
	}

	// Once deletes heal, one publish reclaims the whole backlog, not just
	// version v−1.
	flaky.fail.Store(false)
	publish(10)
	keys = listCatalog()
	if len(keys) > catalogKeepVersions {
		t.Fatalf("backlog not reclaimed after deletes healed: %d objects remain: %v", len(keys), keys)
	}

	// A replica refreshing against the pruned prefix installs the newest
	// version and resolves every series ever published.
	rep := openTestReplica(t, replicaOpts(opts))
	if _, err := rep.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"v0", "v10"} {
		res, err := rep.Query(0, 100, labels.MustEqual("m", m))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("series %s not visible on replica after prune", m)
		}
	}
}
