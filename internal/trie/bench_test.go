package trie

import (
	"fmt"
	"testing"
)

func benchTrie(b *testing.B) *Trie {
	b.Helper()
	tr, err := New(Options{SlotsPerRegion: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	return tr
}

func BenchmarkInsert(b *testing.B) {
	tr := benchTrie(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("hostname\xffhost_%d", i)
		if _, _, err := tr.Insert([]byte(key), int32(i%(1<<30))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := benchTrie(b)
	const n = 50_000
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("hostname\xffhost_%d", i))
		if _, _, err := tr.Insert(keys[i], int32(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(keys[i%n]); !ok {
			b.Fatal("missing key")
		}
	}
}
