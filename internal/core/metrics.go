package core

import (
	"timeunion/internal/cloud"
	"timeunion/internal/obs"
)

// appendSampleMask picks which appends get a latency measurement: one in 64
// per counter shard. Per-sample time.Now() calls would dominate the
// fast-path append cost; sampling keeps the histogram representative while
// the common append pays only one sharded atomic increment.
const appendSampleMask = 63

// dbMetrics bundles the DB-level instruments. A nil *dbMetrics disables
// all of them (Options.DisableMetrics).
type dbMetrics struct {
	// appends is sharded by series/group id: the per-sample append path is
	// the hottest counter in the system and a single cache line would
	// bounce between the parallel writers.
	appends   obs.ShardedCounter
	appendLat *obs.Histogram

	queries   *obs.Counter
	queryErrs *obs.Counter
	queryLat  *obs.Histogram

	// Streaming read path: compressed payload bytes (and chunk/column
	// opens) actually decoded by queries. Chunks pruned by envelope time
	// bounds or never reached by a Seek don't count — the gap between
	// these and lsm_read bytes is the lazy-decode win.
	decodedBytes  *obs.Counter
	decodedChunks *obs.Counter

	// catalogPruned counts stale catalog/%020d objects the writer deleted
	// after a publish (DESIGN.md §4.13).
	catalogPruned *obs.Counter

	recovery *obs.Gauge
}

// newDBMetrics registers the DB-level instruments on reg. Returns nil for a
// nil registry.
func newDBMetrics(reg *obs.Registry) *dbMetrics {
	if reg == nil {
		return nil
	}
	m := &dbMetrics{
		appendLat:     reg.Histogram("timeunion_db_append_seconds", "", "Sampled append latency (1 in 64 appends per shard)."),
		queries:       reg.Counter("timeunion_db_queries_total", "", "Queries evaluated."),
		queryErrs:     reg.Counter("timeunion_db_query_errors_total", "", "Queries that returned an error."),
		queryLat:      reg.Histogram("timeunion_db_query_seconds", "", "End-to-end query latency."),
		decodedBytes:  reg.Counter("timeunion_db_decoded_bytes_total", "", "Compressed chunk bytes decoded by queries (lazily; pruned chunks excluded)."),
		decodedChunks: reg.Counter("timeunion_db_chunks_decoded_total", "", "Chunks (or group columns) decoded by queries."),
		catalogPruned: reg.Counter("timeunion_db_catalog_pruned_total", "", "Stale catalog versions deleted by the writer after publishing."),
		recovery:      reg.Gauge("timeunion_db_recovery_duration_ms", "", "Duration of the last WAL recovery in milliseconds."),
	}
	reg.CounterFunc("timeunion_db_appends_total", "", "Samples appended (all four append APIs).",
		func() float64 { return float64(m.appends.Value()) })
	return m
}

// registerDBGauges exposes the head/store/cache views that already exist as
// Stats() accessors.
func (db *DB) registerDBGauges(reg *obs.Registry) {
	if reg == nil {
		return
	}
	// In the EBS-only configuration (Figure 17) Slow == Fast: the same
	// store is then exposed under both tier labels, which keeps
	// tier-keyed dashboards working at the cost of duplicate values.
	cloud.RegisterStoreMetrics(reg, "fast", db.opts.Fast)
	cloud.RegisterStoreMetrics(reg, "slow", db.opts.Slow)
	cloud.RegisterCacheMetrics(reg, db.cache)
}

// Metrics returns the DB's registry (nil when DisableMetrics was set).
func (db *DB) Metrics() *obs.Registry { return db.metrics }
