package bench

import (
	"os"
	"testing"
)

// TestAllocShapes smoke-tests the alloc experiment mechanics on a tiny
// workload: the report must carry the comparison values and enough runs for
// the variance guard. The deltas themselves are only meaningful at the
// default config — that is TestAllocGuard's job.
func TestAllocShapes(t *testing.T) {
	r, err := Alloc(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Values["runs"]; n < minStatRuns {
		t.Fatalf("runs = %.0f, want >= %d", n, minStatRuns)
	}
	for _, k := range []string{"allocs:streaming", "allocs:baseline", "allocs:delta-pct", "bytes:streaming", "target:allocs"} {
		if _, ok := r.Values[k]; !ok {
			t.Fatalf("missing value %q", k)
		}
	}
	if r.Values["allocs:streaming"] <= 0 {
		t.Fatalf("allocs:streaming = %v", r.Values["allocs:streaming"])
	}
	if a := r.Alloc["streaming"]; a.AllocsPerOp <= 0 || a.BytesPerOp <= 0 {
		t.Fatalf("streaming AllocStat = %+v", a)
	}
}

// TestAllocGuard is the allocation-regression guard behind `make tier1-alloc`.
// It runs the full default-config workload (the shape the recorded baselines
// were measured at) and fails when the pooled streaming path gives back the
// won allocations. Gated on TIMEUNION_ALLOC_GUARD=1: the default-config build
// takes several seconds of insert time and does not belong in every `go test`.
func TestAllocGuard(t *testing.T) {
	if os.Getenv("TIMEUNION_ALLOC_GUARD") != "1" {
		t.Skip("set TIMEUNION_ALLOC_GUARD=1 to run the allocation regression guard")
	}
	r, err := Alloc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["allocs:noisy"] != 0 {
		t.Logf("variance guard tripped: stddev %.1f over mean %.1f — delta may be unstable",
			r.Values["allocs:streaming-stddev"], r.Values["allocs:streaming"])
	}
	if r.Values["target:met"] != 1 {
		t.Fatalf("allocation regression: streaming %.0f allocs/op, target <= %.0f (baseline %.0f)",
			r.Values["allocs:streaming"], r.Values["target:allocs"], r.Values["allocs:baseline"])
	}
}
