package lsm

import (
	"time"

	"timeunion/internal/tuple"
)

// This file implements the compaction orchestrator/executor split
// (DESIGN.md §4.11, after SlateDB's Orchestrator/Scheduler/Executor):
// scheduleLocked inspects the tree for compaction triggers and turns them
// into jobs over disjoint time intervals; a bounded pool of
// compactionWorker goroutines executes them, each committing its own
// manifest edit. Disjointness of the jobs' aligned output intervals is the
// concurrency invariant: two in-flight jobs can never read, replace, or
// produce the same partition, so their manifest commits serialize only at
// the (cheap) manifest write itself.

type jobKind int

const (
	jobL0L1 jobKind = iota
	jobL1L2
)

func (k jobKind) String() string {
	if k == jobL0L1 {
		return "l0l1"
	}
	return "l1l2"
}

// compactionJob is one scheduled compaction over a busy-marked set of
// partitions and the aligned time interval [lo, hi) its outputs may cover.
type compactionJob struct {
	kind   jobKind
	inputs []*partition // L0/L1 partitions consumed (removed on publish)
	// overlapped are the L2 partitions an L1→L2 job patches in place; they
	// stay in the tree but are busy-marked so no other job splices them.
	overlapped []*partition
	handles    []*tableHandle // input tables, retained at schedule time
	outLen     int64          // output partition length
	lo, hi     int64          // aligned busy interval [lo, hi)

	// admitted is when the job entered the queue (journal queue-wait field).
	admitted time.Time
	// res is filled by runL0L1/runL1L2 for the journal event.
	res jobResult
}

// jobResult summarizes one executed compaction for the journal.
type jobResult struct {
	tablesOut, partsOut, patchesOut int
	bytesOut                        int64
}

// scheduleLocked drains every currently-satisfiable compaction trigger
// into the job queue. Caller holds l.mu. Idempotent: partitions claimed by
// a scheduled job are busy-marked, so re-running it never double-schedules.
func (l *LSM) scheduleLocked() {
	if l.closed || l.bgErr != nil || l.opts.CompactionWorkers <= 0 {
		return
	}
	for {
		job := l.nextL0L1JobLocked()
		if job == nil {
			job = l.nextL1L2JobLocked()
		}
		if job == nil {
			return
		}
		l.admitJobLocked(job)
	}
}

// admitJobLocked claims the job's partitions, retains its input tables,
// and queues it for a worker. Caller holds l.mu.
func (l *LSM) admitJobLocked(job *compactionJob) {
	for _, p := range job.inputs {
		l.busyParts[p] = true
		job.handles = append(job.handles, allTables(p)...)
	}
	for _, p := range job.overlapped {
		l.busyParts[p] = true
	}
	for _, h := range job.handles {
		h.retain()
	}
	job.admitted = time.Now()
	l.liveJobs[job] = true
	l.jobs = append(l.jobs, job)
	l.jobCond.Signal()
}

// finishJobLocked releases the job's claims after it ran (or was
// abandoned). Caller holds l.mu.
func (l *LSM) finishJobLocked(job *compactionJob) {
	releaseAll(job.handles)
	for _, p := range job.inputs {
		delete(l.busyParts, p)
	}
	for _, p := range job.overlapped {
		delete(l.busyParts, p)
	}
	delete(l.liveJobs, job)
}

// intervalBusyLocked reports whether [lo, hi) overlaps any live job's
// interval. Caller holds l.mu.
func (l *LSM) intervalBusyLocked(lo, hi int64) bool {
	for j := range l.liveJobs {
		if j.lo < hi && lo < j.hi {
			return true
		}
	}
	return false
}

// nextL0L1JobLocked builds an L0→L1 job when the free (not busy) L0
// partition count exceeds the configured maximum, choosing the oldest
// schedulable victim. Caller holds l.mu.
func (l *LSM) nextL0L1JobLocked() *compactionJob {
	free := 0
	for _, p := range l.l0 {
		if !l.busyParts[p] {
			free++
		}
	}
	if free <= l.opts.MaxL0Partitions {
		return nil
	}
	for _, victim := range l.l0 {
		if l.busyParts[victim] {
			continue
		}
		inputs, outLen, alo, ahi, ok := l.gatherL0L1InputsLocked(victim)
		if !ok || l.intervalBusyLocked(alo, ahi) {
			continue
		}
		return &compactionJob{kind: jobL0L1, inputs: inputs, outLen: outLen, lo: alo, hi: ahi}
	}
	return nil
}

// gatherL0L1InputsLocked computes the aligned-span overlap closure of the
// victim: starting from the victim's window, repeatedly absorb every L0/L1
// partition overlapping the current span aligned to the (shrinking) output
// grid, until stable. This is strictly stronger than pairwise transitive
// overlap — an L1 partition overlapping another input but not the victim
// is pulled in (chained overlap), and so is one only touched by the grid
// alignment of the output windows — which is what guarantees the job's
// outputs never overlap a live partition outside the job.
func (l *LSM) gatherL0L1InputsLocked(victim *partition) (inputs []*partition, outLen, alo, ahi int64, ok bool) {
	in := map[*partition]bool{victim: true}
	inputs = []*partition{victim}
	lo, hi := victim.minT, victim.maxT
	outLen = victim.length()
	for {
		alo = tuple.WindowStart(lo, outLen)
		ahi = tuple.WindowStart(hi-1, outLen) + outLen
		grew := false
		for _, lvl := range [][]*partition{l.l0, l.l1} {
			for _, p := range lvl {
				if in[p] || !p.overlaps(alo, ahi) {
					continue
				}
				in[p] = true
				inputs = append(inputs, p)
				if p.minT < lo {
					lo = p.minT
				}
				if p.maxT > hi {
					hi = p.maxT
				}
				if p.length() < outLen {
					outLen = p.length()
				}
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	for _, p := range inputs {
		if l.busyParts[p] {
			return nil, 0, 0, 0, false
		}
	}
	return inputs, outLen, alo, ahi, true
}

// nextL1L2JobLocked builds an L1→L2 job for the oldest R2 window whose
// level-1 data extends a full R2 beyond it. Caller holds l.mu.
func (l *LSM) nextL1L2JobLocked() *compactionJob {
	if len(l.l1) == 0 {
		return nil
	}
	lastMax := l.l1[0].maxT
	for _, p := range l.l1 {
		if p.maxT > lastMax {
			lastMax = p.maxT
		}
	}
	seen := map[int64]bool{}
	for _, first := range l.l1 { // sorted by minT: oldest window first
		w := tuple.WindowStart(first.minT, l.r2)
		if seen[w] {
			continue
		}
		seen[w] = true
		if lastMax-first.minT <= l.r2 {
			continue // window still filling
		}
		var inputs []*partition
		busy := false
		for _, p := range l.l1 {
			if p.overlaps(w, w+l.r2) {
				if l.busyParts[p] {
					busy = true
					break
				}
				inputs = append(inputs, p)
			}
		}
		if busy || len(inputs) == 0 {
			continue
		}
		inMin, inMax := inputs[0].minT, inputs[0].maxT
		for _, p := range inputs[1:] {
			if p.minT < inMin {
				inMin = p.minT
			}
			if p.maxT > inMax {
				inMax = p.maxT
			}
		}
		outLen := l.r2
		var overlapped []*partition
		for _, p := range l.l2 {
			if p.overlaps(inMin, inMax) {
				if l.busyParts[p] {
					busy = true
					break
				}
				overlapped = append(overlapped, p)
				if p.length() < outLen {
					outLen = p.length()
				}
			}
		}
		if busy {
			continue
		}
		lo, hi := inMin, inMax
		if w < lo {
			lo = w
		}
		if w+l.r2 > hi {
			hi = w + l.r2
		}
		for _, p := range overlapped {
			if p.minT < lo {
				lo = p.minT
			}
			if p.maxT > hi {
				hi = p.maxT
			}
		}
		alo := tuple.WindowStart(lo, outLen)
		ahi := tuple.WindowStart(hi-1, outLen) + outLen
		if l.intervalBusyLocked(alo, ahi) {
			continue
		}
		return &compactionJob{kind: jobL1L2, inputs: inputs, overlapped: overlapped, outLen: outLen, lo: alo, hi: ahi}
	}
	return nil
}

// compactionWorker is one executor-pool goroutine: pop a job, run it,
// commit, release, reschedule. worker is the pool index carried into the
// journal's compaction events.
func (l *LSM) compactionWorker(worker int) {
	defer l.workerWg.Done()
	l.mu.Lock()
	for {
		for len(l.jobs) == 0 && !l.closed {
			l.jobCond.Wait()
		}
		if len(l.jobs) == 0 {
			l.mu.Unlock()
			return
		}
		job := l.jobs[0]
		l.jobs = l.jobs[1:]
		if l.bgErr != nil || l.closed {
			// Abandon without running; the tree is poisoned or shutting
			// down. Inputs stay live (their data is still the truth).
			l.finishJobLocked(job)
			if j := l.opts.Journal; j != nil {
				// One event per abandoned job inside the worker loop: the
				// loop itself never returns until shutdown, so a deferred
				// emit could never attribute events to individual jobs.
				//lint:ignore journalcover per-job abandonment events inside the worker loop are intentional; the loop is not an op boundary
				j.Emit("lsm.job_abandoned", job.admitted, l.bgErr, map[string]any{
					"job": job.kind.String(), "worker": worker,
				})
			}
			l.idleCond.Broadcast()
			continue
		}
		l.compActive++
		if p := uint64(l.compActive); p > l.stats.parallelPeak.Load() {
			l.stats.parallelPeak.Store(p)
		}
		l.mu.Unlock()

		err := l.runJob(job, worker)

		l.mu.Lock()
		l.compActive--
		l.finishJobLocked(job)
		if err != nil && l.bgErr == nil {
			l.bgErr = err
		}
		if l.opts.DynamicSizing {
			l.adjustPartitionLengthsLocked()
		}
		l.scheduleLocked()
		l.idleCond.Broadcast()
	}
}

// runJob dispatches one compaction job, times it, and journals it with the
// full executor-lifecycle context (worker id, queue wait, tables and bytes
// in/out, the aligned interval).
func (l *LSM) runJob(job *compactionJob, worker int) (err error) {
	start := time.Now()
	defer func() {
		l.mCompact.Observe(time.Since(start))
		if j := l.opts.Journal; j != nil {
			var bytesIn int64
			for _, h := range job.handles {
				bytesIn += h.tbl.Size()
			}
			fields := map[string]any{
				"worker":         worker,
				"queue_us":       start.Sub(job.admitted).Microseconds(),
				"tables_in":      len(job.handles),
				"bytes_in":       bytesIn,
				"partitions_in":  len(job.inputs),
				"tables_out":     job.res.tablesOut,
				"bytes_out":      job.res.bytesOut,
				"partitions_out": job.res.partsOut,
				"interval_lo":    job.lo,
				"interval_hi":    job.hi,
			}
			kind := "lsm.compact.l0l1"
			if job.kind == jobL1L2 {
				kind = "lsm.compact.l1l2"
				fields["patches_out"] = job.res.patchesOut
				fields["overlapped_l2"] = len(job.overlapped)
			}
			j.Emit(kind, start, err, fields)
		}
	}()
	if job.kind == jobL0L1 {
		return l.runL0L1(job)
	}
	return l.runL1L2(job)
}
