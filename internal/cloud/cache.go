package cloud

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRUCache is a byte-capacity-bounded LRU of data segments fetched from the
// slow store during querying (paper §4.1: "we equip a 1GB in-memory LRU
// cache to cache the data segments fetched from S3"). Concurrent misses on
// the same key are deduplicated: GetOrFetch issues one store fetch and
// shares the result with every waiter (singleflight), so a parallel query
// whose workers touch the same slow-tier segment pays one S3 Get, not N.
type LRUCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[string]*list.Element
	flight   map[string]*flightCall

	// Counters are atomic so scrapers and stats snapshots never contend
	// with lookups for the structural mutex.
	hits, misses, shared, evictions atomic.Uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

// flightCall is one in-progress fetch that late-arriving misses wait on.
type flightCall struct {
	wg   sync.WaitGroup
	data []byte
	err  error
}

// NewLRUCache creates a cache bounded to capacity bytes. A capacity of 0
// disables caching (all lookups miss), but GetOrFetch still deduplicates
// concurrent fetches of the same key.
func NewLRUCache(capacity int64) *LRUCache {
	return &LRUCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flight:   make(map[string]*flightCall),
	}
}

// Get returns the cached segment, if present.
func (c *LRUCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		c.hits.Add(1)
		return e.Value.(*cacheEntry).data, true
	}
	c.misses.Add(1)
	return nil, false
}

// GetOrFetch returns the cached segment, calling fetch on a miss and
// inserting the result. Concurrent callers missing on the same key share a
// single fetch: one caller (the leader) runs fetch while the rest block and
// receive its result. Transient store failures are retried by the leader
// with DefaultRetry's bounded backoff before the error is shared; errors
// are returned to every sharing caller but are not cached, so the next
// miss retries from scratch.
func (c *LRUCache) GetOrFetch(key string, fetch func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		c.hits.Add(1)
		c.mu.Unlock()
		return e.Value.(*cacheEntry).data, nil
	}
	if fc, ok := c.flight[key]; ok {
		c.shared.Add(1)
		c.mu.Unlock()
		fc.wg.Wait()
		return fc.data, fc.err
	}
	fc := &flightCall{}
	fc.wg.Add(1)
	c.flight[key] = fc
	c.misses.Add(1)
	c.mu.Unlock()

	fc.err = DefaultRetry.Do(func() error {
		var err error
		fc.data, err = fetch()
		return err
	})
	if fc.err == nil {
		c.Put(key, fc.data)
	}
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()
	fc.wg.Done()
	return fc.data, fc.err
}

// Put inserts a segment, evicting LRU entries to stay within capacity.
// Segments larger than the whole capacity are not cached; overwriting an
// existing key with such a segment drops the stale cached value.
func (c *LRUCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(data)) > c.capacity {
		c.removeLocked(key)
		return
	}
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.used += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.used += int64(len(data))
	}
	for c.used > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.used -= int64(len(ent.data))
		delete(c.items, ent.key)
		c.ll.Remove(back)
		c.evictions.Add(1)
	}
}

// Invalidate drops a key (after the underlying object is deleted or
// replaced by compaction).
func (c *LRUCache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(key)
}

// removeLocked drops a key's entry, adjusting the byte accounting. The
// caller holds c.mu.
func (c *LRUCache) removeLocked(key string) {
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.used -= int64(len(ent.data))
		delete(c.items, ent.key)
		c.ll.Remove(e)
	}
}

// UsedBytes returns the current cached volume.
func (c *LRUCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// HitRate returns hits, misses since creation. A GetOrFetch leader counts
// as a miss; waiters sharing its fetch count in neither (see SharedFetches).
func (c *LRUCache) HitRate() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// SharedFetches returns how many callers were served by waiting on another
// caller's in-flight fetch instead of issuing their own store read.
func (c *LRUCache) SharedFetches() uint64 { return c.shared.Load() }

// Evictions returns how many entries capacity pressure has pushed out.
func (c *LRUCache) Evictions() uint64 { return c.evictions.Load() }
