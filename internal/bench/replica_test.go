package bench

import (
	"testing"
	"time"
)

func TestReplicaShapes(t *testing.T) {
	cfg := tinyConfig()
	cfg.SLODuration = time.Second // per-replica-count query window
	r, err := Replica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["qps_1"] <= 0 {
		t.Fatal("single replica served no queries")
	}
	// Under the fixed-capacity replica model, four replicas must beat one
	// by well over the noise floor (ideal 4.00x; CPU-bound boxes land
	// lower).
	if s := r.Values["speedup_4"]; s < 1.5 {
		t.Fatalf("4-replica speedup = %.2fx, want > 1.5x", s)
	}
	if r.Values["speedup_2"] <= r.Values["speedup_1"] {
		t.Fatalf("2-replica speedup %.2fx not above 1x", r.Values["speedup_2"])
	}
	// Staleness: measurable, and bounded by a few multiples of the 5ms
	// refresh interval plus flush cost (generous CI slack).
	mean := r.Values["staleness_mean_ms"]
	if mean <= 0 || mean > 5000 {
		t.Fatalf("staleness mean = %.3fms", mean)
	}
	if r.Values["staleness_max_ms"] < mean {
		t.Fatalf("staleness max %.3fms below mean %.3fms", r.Values["staleness_max_ms"], mean)
	}
}
